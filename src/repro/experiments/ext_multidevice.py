"""X2 — extension: consolidating coprocessors (D devices per node).

The problem formulation (§IV-B) allows D Xeon Phis per server but the
testbed had one. This extension holds total cards constant (8) and
varies the node shape: 8x1, 4x2, 2x4. Consolidation pools the host slots
that feed each card and lets the within-node device picker balance, at
the price of fewer host CPUs per card.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..cluster import ClusterConfig
from ..metrics import format_table
from .common import DEFAULT_SEED, PAPER_CLUSTER
from .runner import SimTask, TaskRunner, execute, sim_task

#: (nodes, devices_per_node) shapes with 8 cards total.
DEFAULT_SHAPES = ((8, 1), (4, 2), (2, 4))

_CONFIGURATIONS = ("MCC", "MCCK")


@dataclass
class MultiDeviceResult:
    job_count: int
    shapes: tuple[tuple[int, int], ...]
    makespans: dict[str, list[float]]  # configuration -> aligned with shapes


def tasks(
    jobs: int = 400,
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> list[SimTask]:
    workload = ("table1", jobs, seed)
    return [
        sim_task(
            "ext-multidevice", configuration,
            replace(config, nodes=nodes, devices_per_node=devices), workload,
            label=f"{configuration}@{nodes}x{devices}",
        )
        for nodes, devices in shapes
        for configuration in _CONFIGURATIONS
    ]


def merge(
    values: list,
    jobs: int = 400,
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> MultiDeviceResult:
    cursor = iter(values)
    makespans: dict[str, list[float]] = {c: [] for c in _CONFIGURATIONS}
    for _shape in shapes:
        for configuration in _CONFIGURATIONS:
            makespans[configuration].append(next(cursor)["makespan"])
    return MultiDeviceResult(job_count=jobs, shapes=shapes, makespans=makespans)


def run(
    jobs: int = 400,
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
    runner: Optional[TaskRunner] = None,
) -> MultiDeviceResult:
    grid = tasks(jobs=jobs, shapes=shapes, config=config, seed=seed)
    values = execute(grid, runner)
    return merge(values, jobs=jobs, shapes=shapes, config=config, seed=seed)


def render(result: MultiDeviceResult) -> str:
    rows = []
    for i, (nodes, devices) in enumerate(result.shapes):
        rows.append(
            [
                f"{nodes} nodes x {devices} Phi",
                f"{result.makespans['MCC'][i]:.0f}",
                f"{result.makespans['MCCK'][i]:.0f}",
            ]
        )
    return format_table(
        ["cluster shape (8 cards total)", "MCC (s)", "MCCK (s)"],
        rows,
        title=f"X2: consolidation at constant card count ({result.job_count} jobs)",
    )
