"""X2 — extension: consolidating coprocessors (D devices per node).

The problem formulation (§IV-B) allows D Xeon Phis per server but the
testbed had one. This extension holds total cards constant (8) and
varies the node shape: 8x1, 4x2, 2x4. Consolidation pools the host slots
that feed each card and lets the within-node device picker balance, at
the price of fewer host CPUs per card.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cluster import ClusterConfig, run_mcc, run_mcck
from ..metrics import format_table
from ..workloads import generate_table1_jobs
from .common import DEFAULT_SEED, PAPER_CLUSTER

#: (nodes, devices_per_node) shapes with 8 cards total.
DEFAULT_SHAPES = ((8, 1), (4, 2), (2, 4))


@dataclass
class MultiDeviceResult:
    job_count: int
    shapes: tuple[tuple[int, int], ...]
    makespans: dict[str, list[float]]  # configuration -> aligned with shapes


def run(
    jobs: int = 400,
    shapes: tuple[tuple[int, int], ...] = DEFAULT_SHAPES,
    config: ClusterConfig = PAPER_CLUSTER,
    seed: int = DEFAULT_SEED,
) -> MultiDeviceResult:
    job_set = generate_table1_jobs(jobs, seed=seed)
    makespans: dict[str, list[float]] = {"MCC": [], "MCCK": []}
    for nodes, devices in shapes:
        shaped = replace(config, nodes=nodes, devices_per_node=devices)
        makespans["MCC"].append(run_mcc(job_set, shaped).makespan)
        makespans["MCCK"].append(run_mcck(job_set, shaped).makespan)
    return MultiDeviceResult(job_count=jobs, shapes=shapes, makespans=makespans)


def render(result: MultiDeviceResult) -> str:
    rows = []
    for i, (nodes, devices) in enumerate(result.shapes):
        rows.append(
            [
                f"{nodes} nodes x {devices} Phi",
                f"{result.makespans['MCC'][i]:.0f}",
                f"{result.makespans['MCCK'][i]:.0f}",
            ]
        )
    return format_table(
        ["cluster shape (8 cards total)", "MCC (s)", "MCCK (s)"],
        rows,
        title=f"X2: consolidation at constant card count ({result.job_count} jobs)",
    )
