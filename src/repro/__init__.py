"""repro — reproduction of the IPDPS'14 coprocessor sharing-aware scheduler.

Public API highlights:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.phi` — Xeon Phi device model.
* :mod:`repro.mpss` — offload runtime (MPSS/COI/SCIF analogue).
* :mod:`repro.cosmic` — node-level sharing middleware.
* :mod:`repro.condor` — HTCondor analogue (ClassAds, matchmaking).
* :mod:`repro.core` — the paper's knapsack-based cluster scheduler.
* :mod:`repro.workloads` — Table-I and synthetic job generators.
* :mod:`repro.cluster` — end-to-end cluster simulation driver.
* :mod:`repro.metrics` — makespan / utilization / footprint analysis.
* :mod:`repro.experiments` — regenerates every table and figure.
"""

__version__ = "1.0.0"
