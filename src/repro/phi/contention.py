"""Contention (slowdown) models for concurrent offloads on a manycore.

The paper relies on two empirical facts from COSMIC [6]:

* **Thread oversubscription** — running more software threads than the
  240 hardware threads degrades performance by up to ~800% because the
  manycore's context switches are expensive (large vector state).
* **No oversubscription, affinitized** — when concurrent offloads fit
  within the hardware thread budget and COSMIC pins them to disjoint core
  sets, they run at full speed.

The models below translate a device-wide thread demand into a per-offload
service *rate* (1.0 = full speed). They are deliberately simple, convex,
and calibrated so that the degradations land in the range reported in [6].
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import XeonPhiSpec


#: Sharing-interference factor used by the cluster experiments: k-way
#: sharing yields k / (1 + 0.35 (k-1)) aggregate throughput (~1.5x at
#: k=2, ~2x at k=4), calibrated to the multiprocessing gains of [6].
CALIBRATED_SHARING_PENALTY = 0.35


class ContentionModel:
    """Interface: map device-wide demand to a per-offload service rate."""

    def rate(
        self, total_threads: int, spec: XeonPhiSpec, concurrency: int = 1
    ) -> float:
        """Service rate multiplier applied to every running offload.

        Parameters
        ----------
        total_threads:
            Sum of thread demands across all offloads currently executing
            on the device.
        spec:
            The device's hardware description.
        concurrency:
            Number of offloads currently executing. Even thread-disjoint
            offloads share the ring interconnect, memory bandwidth and
            caches, so efficiency is sub-linear in concurrency ([6]
            reports ~1.3-1.6x aggregate throughput from multiprocessing,
            not Nx).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class AffinitizedContention(ContentionModel):
    """COSMIC-affinitized execution with a convex oversubscription penalty.

    While total demand stays within the hardware budget every offload runs
    at rate 1 (disjoint core sets, no interference). Past the budget, each
    offload receives a fair share ``T / D`` of the hardware further divided
    by a context-switch penalty that grows linearly with the
    oversubscription ratio::

        x = D / T                 (oversubscription ratio, x > 1)
        rate = (1 / x) / (1 + beta * (x - 1))

    With the default ``beta = 1.5`` the aggregate slowdown reaches ~8x at
    x = 2.5, matching the worst cases reported by [6].

    ``sharing_penalty`` models the shared-fabric interference between
    co-running offloads (ring interconnect, memory bandwidth, caches):
    each additional concurrent offload divides everyone's rate by
    ``1 + sharing_penalty`` per extra offload, so k-way sharing delivers
    ``k / (1 + sharing_penalty * (k-1))`` aggregate throughput — sub-
    linear, saturating, in line with the multiprocessing gains [6]
    measures on real hardware. The default of 0 is the idealized
    perfectly-affinitized card; cluster simulations use
    :data:`CALIBRATED_SHARING_PENALTY`.
    """

    beta: float = 1.5
    sharing_penalty: float = 0.0

    def rate(
        self, total_threads: int, spec: XeonPhiSpec, concurrency: int = 1
    ) -> float:
        if total_threads < 0:
            raise ValueError("total_threads must be non-negative")
        if concurrency < 0:
            raise ValueError("concurrency must be non-negative")
        base = 1.0 / (1.0 + self.sharing_penalty * max(0, concurrency - 1))
        budget = spec.hardware_threads
        if total_threads <= budget:
            return base
        x = total_threads / budget
        return base * (1.0 / x) / (1.0 + self.beta * (x - 1.0))


@dataclass(frozen=True)
class UnmanagedContention(ContentionModel):
    """No affinitization (raw MPSS): mild interference below the budget.

    Without COSMIC's thread-to-core pinning, concurrent offloads may land
    on overlapping cores even when their combined demand fits the
    hardware. We model that as a small interference factor that scales
    with device occupancy, on top of the oversubscription penalty.
    """

    beta: float = 1.5
    interference: float = 0.15
    sharing_penalty: float = 0.45

    def rate(
        self, total_threads: int, spec: XeonPhiSpec, concurrency: int = 1
    ) -> float:
        if total_threads < 0:
            raise ValueError("total_threads must be non-negative")
        if concurrency < 0:
            raise ValueError("concurrency must be non-negative")
        budget = spec.hardware_threads
        occupancy = min(1.0, total_threads / budget)
        base = 1.0 / (1.0 + self.interference * occupancy)
        base /= 1.0 + self.sharing_penalty * max(0, concurrency - 1)
        if total_threads <= budget:
            return base
        x = total_threads / budget
        return base * (1.0 / x) / (1.0 + self.beta * (x - 1.0))


def slowdown(
    model: ContentionModel,
    total_threads: int,
    spec: XeonPhiSpec,
    concurrency: int = 1,
) -> float:
    """Convenience: the service-time multiplier (inverse of the rate)."""
    rate = model.rate(total_threads, spec, concurrency)
    if rate <= 0:
        raise ValueError(f"model produced non-positive rate {rate!r}")
    return 1.0 / rate
