"""Hardware description of a Xeon Phi coprocessor.

Defaults follow the paper's evaluation platform (§V): ~60 in-order cores,
4 hardware threads per core (240 threads), 8 GB of device memory shared by
user processes, the on-card Linux and daemons.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class XeonPhiSpec:
    """Immutable capacity description of one coprocessor card.

    Attributes
    ----------
    cores:
        Number of physical cores (the paper's cards have 60 usable).
    threads_per_core:
        Hardware threads per core (4 on Knights Corner).
    memory_mb:
        Physical device memory in MiB available to user jobs.
    reserved_memory_mb:
        Memory held back for the on-card OS and daemons; subtracted from
        ``memory_mb`` to form the user-visible capacity.
    """

    cores: int = 60
    threads_per_core: int = 4
    memory_mb: int = 8192
    reserved_memory_mb: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.threads_per_core <= 0:
            raise ValueError("threads_per_core must be positive")
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if not 0 <= self.reserved_memory_mb < self.memory_mb:
            raise ValueError("reserved_memory_mb must lie in [0, memory_mb)")

    @property
    def hardware_threads(self) -> int:
        """Total hardware threads (paper: 240)."""
        return self.cores * self.threads_per_core

    @property
    def usable_memory_mb(self) -> int:
        """Device memory available to user jobs."""
        return self.memory_mb - self.reserved_memory_mb

    def cores_for_threads(self, threads: int) -> int:
        """Cores occupied by an offload using ``threads`` threads.

        COSMIC-style affinitization packs a job's threads onto the fewest
        cores possible, so an offload with ``t`` threads occupies
        ``ceil(t / threads_per_core)`` cores.
        """
        if threads < 0:
            raise ValueError("threads must be non-negative")
        return -(-threads // self.threads_per_core)


#: The configuration used throughout the paper's evaluation.
PAPER_SPEC = XeonPhiSpec(cores=60, threads_per_core=4, memory_mb=8192)
