"""The simulated Xeon Phi coprocessor.

The device executes *offloads* — bursts of parallel work characterized by
a thread count and an amount of work (seconds at full speed). Concurrent
offloads interact through a :class:`~repro.phi.contention.ContentionModel`
that maps the device-wide thread demand to a per-offload service rate;
whenever the set of running offloads changes, every offload's remaining
work is advanced and its completion rescheduled (a malleable-task /
processor-sharing engine built on interrupts).

The device also owns the physical memory ledger. Allocating past capacity
invokes the OOM killer, mirroring the on-card Linux behaviour the paper
describes: a victim process is terminated and its memory reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional

from ..obs import audit as _audit
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import Environment, Interrupt
from .contention import AffinitizedContention, ContentionModel
from .spec import PAPER_SPEC, XeonPhiSpec
from .telemetry import DeviceTelemetry

#: Remaining-work threshold below which an offload is considered done.
_EPS = 1e-9


class OOMKilled(Exception):
    """Raised inside a job whose device process was chosen by the OOM killer."""

    def __init__(self, owner: Hashable, device: "XeonPhi") -> None:
        super().__init__(f"process {owner!r} OOM-killed on {device.name}")
        self.owner = owner
        self.device = device


#: Device lifecycle states: ``"healthy"`` serves offloads, ``"draining"``
#: finishes in-flight work but admits no new process, ``"failed"`` is down.
DEVICE_STATES = ("healthy", "draining", "failed")


class DeviceFailed(Exception):
    """The coprocessor is down (card hang, MPSS reset, hardware loss).

    Carries ``fault_status`` so the Condor layer classifies it as an
    infrastructure failure (retryable) without importing this module —
    see :mod:`repro.faults.errors` for the attribute protocol.
    """

    fault_status = "device-failed"

    def __init__(self, device_name: str) -> None:
        super().__init__(f"device {device_name} failed")
        self.device_name = device_name


class _RateChange:
    """Interrupt cause used when an offload's service rate changes."""

    __slots__ = ()


_RATE_CHANGE = _RateChange()


@dataclass
class OffloadRecord:
    """Log entry for one completed (or killed) offload."""

    owner: Hashable
    threads: int
    work: float
    start: float
    end: float
    completed: bool


@dataclass
class _Task:
    """A running offload (mutable bookkeeping)."""

    owner: Hashable
    threads: int
    remaining: float
    rate: float
    last_update: float
    proc: Any  # repro.sim.Process
    start: float
    work: float


class XeonPhi:
    """One simulated coprocessor card.

    Parameters
    ----------
    env:
        Simulation environment.
    spec:
        Hardware description (defaults to the paper's 60-core, 8 GB card).
    contention:
        Model mapping total thread demand to per-offload service rate.
    name:
        Human-readable identifier used in logs and telemetry.
    oom_policy:
        ``"badness"`` kills the largest-resident process (deterministic,
        Linux-like); ``"random"`` picks a victim uniformly using ``rng``
        (the paper's "randomly terminates processes" reading).
    rng:
        ``random.Random``-like object; required for ``oom_policy="random"``.
    """

    def __init__(
        self,
        env: Environment,
        spec: XeonPhiSpec = PAPER_SPEC,
        contention: Optional[ContentionModel] = None,
        name: str = "mic0",
        oom_policy: str = "badness",
        rng: Any = None,
    ) -> None:
        if oom_policy not in ("badness", "random"):
            raise ValueError(f"unknown oom_policy {oom_policy!r}")
        if oom_policy == "random" and rng is None:
            raise ValueError("oom_policy='random' requires an rng")
        self.env = env
        self.spec = spec
        self.contention = contention or AffinitizedContention()
        self.name = name
        self.oom_policy = oom_policy
        self.rng = rng
        self.telemetry = DeviceTelemetry()
        self.offload_log: list[OffloadRecord] = []
        self.state = "healthy"

        self._tasks: list[_Task] = []
        # Incremental thread/core totals over ``_tasks``: every rate
        # recomputation used to re-sum the task list twice. Integer
        # arithmetic, so the running totals are exactly the re-sums.
        self._threads_sum = 0
        self._cores_sum = 0
        self._resident: dict[Hashable, float] = {}
        self._on_kill: dict[Hashable, Callable[[Hashable], None]] = {}
        self._insertion: dict[Hashable, int] = {}
        self._iseq = 0

        registry = _metrics.ACTIVE
        if registry is not None:
            # The device telemetry already maintains exact step series on
            # the sim clock; adopting them costs nothing during the run.
            registry.adopt_series(f"phi.{name}.busy_cores", self.telemetry.busy_cores)
            registry.adopt_series(
                f"phi.{name}.busy_threads", self.telemetry.busy_threads
            )
            registry.adopt_series(
                f"phi.{name}.resident_memory_mb", self.telemetry.resident_memory_mb
            )

    # -- inspection --------------------------------------------------------

    @property
    def running_offloads(self) -> int:
        """Number of offloads currently executing."""
        return len(self._tasks)

    @property
    def demanded_threads(self) -> int:
        """Sum of thread demands of running offloads."""
        return self._threads_sum

    @property
    def busy_cores(self) -> int:
        """Cores currently occupied (the paper's utilization numerator)."""
        return min(self.spec.cores, self._cores_sum)

    @property
    def resident_memory_mb(self) -> float:
        """Total resident device memory across processes."""
        return sum(self._resident.values())

    def resident_of(self, owner: Hashable) -> float:
        """Resident memory of one process (0 if absent)."""
        return self._resident.get(owner, 0.0)

    # -- lifecycle (failure / recovery) --------------------------------------

    def fail(self, cause: Optional[Any] = None) -> Any:
        """Take the card down, interrupting every in-flight offload.

        ``cause`` becomes the interrupt cause delivered to the offload
        processes (defaults to a :class:`DeviceFailed` for this card) and
        is returned so the caller can reuse it for jobs that are matched
        to the card but not currently inside an offload.
        """
        cause = cause if cause is not None else DeviceFailed(self.name)
        if self.state == "failed":
            return cause
        self.state = "failed"
        self.telemetry.device_failures += 1
        for task in list(self._tasks):
            if task.proc.is_alive and task.proc is not self.env.active_process:
                task.proc.interrupt(cause)
        return cause

    def restore(self) -> None:
        """Bring the card back (post-reset / node reboot)."""
        if self.state == "healthy":
            return
        self.state = "healthy"
        self.telemetry.device_restores += 1

    def drain(self) -> None:
        """Stop admitting new device processes; in-flight work finishes."""
        if self.state == "failed":
            raise RuntimeError(f"cannot drain failed device {self.name}")
        self.state = "draining"

    # -- process & memory management ----------------------------------------

    def register_process(
        self, owner: Hashable, on_kill: Optional[Callable[[Hashable], None]] = None
    ) -> None:
        """Announce a device-side (COI) process owned by ``owner``.

        ``on_kill`` is invoked if the OOM killer selects the process.
        """
        if self.state != "healthy":
            raise DeviceFailed(self.name)
        if owner in self._resident:
            raise ValueError(f"process {owner!r} already registered")
        self._iseq += 1
        self._insertion[owner] = self._iseq
        self._resident[owner] = 0.0
        if on_kill is not None:
            self._on_kill[owner] = on_kill
        self._record_memory()

    def unregister_process(self, owner: Hashable) -> None:
        """Tear down a device-side process, reclaiming its memory."""
        self._resident.pop(owner, None)
        self._on_kill.pop(owner, None)
        self._insertion.pop(owner, None)
        self._record_memory()

    def allocate(self, owner: Hashable, mb: float) -> None:
        """Grow ``owner``'s resident memory by ``mb`` MiB.

        Allocation always succeeds (Linux overcommit); if the device is
        then oversubscribed the OOM killer selects victims until resident
        memory fits again.
        """
        if mb < 0:
            raise ValueError("mb must be non-negative")
        if owner not in self._resident:
            raise KeyError(f"process {owner!r} is not registered")
        self._resident[owner] += mb
        self._record_memory()
        self._oom_killer()

    def set_resident(self, owner: Hashable, mb: float) -> None:
        """Set ``owner``'s resident memory to an absolute value."""
        if mb < 0:
            raise ValueError("mb must be non-negative")
        if owner not in self._resident:
            raise KeyError(f"process {owner!r} is not registered")
        self._resident[owner] = mb
        self._record_memory()
        self._oom_killer()

    def free(self, owner: Hashable, mb: float) -> None:
        """Shrink ``owner``'s resident memory by ``mb`` MiB."""
        if mb < 0:
            raise ValueError("mb must be non-negative")
        if owner not in self._resident:
            raise KeyError(f"process {owner!r} is not registered")
        auditor = _audit.ACTIVE
        if auditor is not None:
            # The clamp below hides over-frees; the auditor sees the raw
            # ledger value so double-frees surface instead of vanishing.
            auditor.device_memory(
                self.name, self._resident[owner] - mb, self.env.now
            )
        self._resident[owner] = max(0.0, self._resident[owner] - mb)
        self._record_memory()

    def _oom_killer(self) -> None:
        capacity = self.spec.usable_memory_mb
        while self.resident_memory_mb > capacity and self._resident:
            victims = [o for o, mb in self._resident.items() if mb > 0]
            if not victims:
                break
            if self.oom_policy == "random":
                victim = self.rng.choice(sorted(victims, key=self._insertion.get))
            else:
                # Linux badness heuristic: kill the largest consumer;
                # deterministic tie-break on registration order.
                victim = max(
                    victims, key=lambda o: (self._resident[o], -self._insertion[o])
                )
            self.telemetry.oom_kills += 1
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("phi.oom_kills").inc()
            tracer = _trace.ACTIVE
            if tracer is not None:
                parent = tracer.get(("run", victim))
                tracer.instant(
                    "oom-kill",
                    "phi",
                    self.env.now,
                    tid=parent.tid if parent is not None else 0,
                    device=self.name,
                    victim=str(victim),
                )
            self._resident[victim] = 0.0
            self._record_memory()
            callback = self._on_kill.get(victim)
            if callback is not None:
                callback(victim)

    # -- offload execution ---------------------------------------------------

    def run_offload(self, owner: Hashable, threads: int, work: float):
        """Execute one offload; ``yield from`` this inside a job process.

        Parameters
        ----------
        owner:
            The device-side process issuing the offload.
        threads:
            Software threads the offload spawns (may exceed the hardware
            budget — that *is* thread oversubscription).
        work:
            Seconds of execution at full speed (rate 1).
        """
        env = self.env
        if threads <= 0:
            raise ValueError("threads must be positive")
        if work < 0:
            raise ValueError("work must be non-negative")
        if self.state == "failed":
            raise DeviceFailed(self.name)
        proc = env.active_process
        if proc is None:
            raise RuntimeError("run_offload must be called from a process")

        task = _Task(
            owner=owner,
            threads=threads,
            remaining=float(work),
            rate=1.0,
            last_update=env.now,
            proc=proc,
            start=env.now,
            work=float(work),
        )
        self._tasks.append(task)
        self._threads_sum += threads
        self._cores_sum += self.spec.cores_for_threads(threads)
        self._recompute()
        completed = False
        tracer = _trace.ACTIVE
        span = None
        if tracer is not None:
            parent = tracer.get(("run", owner))
            span = tracer.begin(
                "offload",
                "phi",
                env.now,
                tid=parent.tid if parent is not None else 0,
                parent=parent,
                device=self.name,
                threads=threads,
                work=work,
            )
        try:
            while task.remaining > _EPS:
                task.last_update = env.now
                eta = task.remaining / task.rate
                try:
                    yield env.timeout(eta)
                    task.remaining = 0.0
                except Interrupt as interrupt:
                    if isinstance(interrupt.cause, _RateChange):
                        # _recompute already advanced ``remaining``;
                        # loop to re-sleep at the new rate.
                        continue
                    raise  # Kills and other interrupts belong to the caller.
            completed = True
        finally:
            self._tasks.remove(task)
            self._threads_sum -= threads
            self._cores_sum -= self.spec.cores_for_threads(threads)
            self._recompute()
            if span is not None:
                tracer.end(span, env.now, completed=completed)
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("phi.offloads").inc()
                if not completed:
                    registry.counter("phi.offloads_killed").inc()
            self.offload_log.append(
                OffloadRecord(
                    owner=owner,
                    threads=threads,
                    work=task.work,
                    start=task.start,
                    end=env.now,
                    completed=completed,
                )
            )

    def _recompute(self) -> None:
        """Advance all running offloads and apply the new service rates."""
        env = self.env
        now = env.now
        new_rate = (
            self.contention.rate(
                self.demanded_threads, self.spec, concurrency=len(self._tasks)
            )
            if self._tasks
            else 1.0
        )
        for task in self._tasks:
            elapsed = now - task.last_update
            if elapsed > 0:
                task.remaining = max(0.0, task.remaining - elapsed * task.rate)
                task.last_update = now
            if task.rate != new_rate:
                task.rate = new_rate
                # Wake sleepers so they re-sleep with the new rate; the
                # task that is currently being resumed (if any) is not
                # sleeping and will pick the new rate up on its next loop.
                if task.proc is not env.active_process and task.proc.is_alive:
                    task.proc.interrupt(_RATE_CHANGE)
        self.telemetry.busy_cores.record(now, self.busy_cores)
        self.telemetry.busy_threads.record(
            now, min(self.spec.hardware_threads, self.demanded_threads)
        )

    def _record_memory(self) -> None:
        self.telemetry.resident_memory_mb.record(self.env.now, self.resident_memory_mb)

    def __repr__(self) -> str:
        return (
            f"<XeonPhi {self.name!r} offloads={self.running_offloads} "
            f"threads={self.demanded_threads}/{self.spec.hardware_threads} "
            f"mem={self.resident_memory_mb:.0f}/{self.spec.usable_memory_mb}MB>"
        )
