"""Simulated Xeon Phi coprocessor: hardware spec, contention, memory, telemetry.

The device model reproduces the properties the paper's scheduler depends
on: 60 cores x 4 hardware threads, 8 GB device memory, full-speed
execution while concurrent offloads fit the thread budget (COSMIC
affinitization), steep slowdowns under thread oversubscription, and
OOM-killer process termination under memory oversubscription.
"""

from .contention import (
    AffinitizedContention,
    CALIBRATED_SHARING_PENALTY,
    ContentionModel,
    UnmanagedContention,
    slowdown,
)
from .device import DEVICE_STATES, DeviceFailed, OffloadRecord, OOMKilled, XeonPhi
from .micinfo import MicInfo, format_report, query_device, query_node
from .spec import PAPER_SPEC, XeonPhiSpec
from .telemetry import DeviceTelemetry, StepSeries

__all__ = [
    "AffinitizedContention",
    "CALIBRATED_SHARING_PENALTY",
    "ContentionModel",
    "DEVICE_STATES",
    "DeviceFailed",
    "DeviceTelemetry",
    "MicInfo",
    "OffloadRecord",
    "OOMKilled",
    "PAPER_SPEC",
    "StepSeries",
    "UnmanagedContention",
    "XeonPhi",
    "XeonPhiSpec",
    "format_report",
    "query_device",
    "query_node",
    "slowdown",
]
