"""``micinfo`` — the device-query utility.

The paper's Condor integration has every compute node run Intel's
``micinfo`` to discover how many Phi cards it hosts and how much memory
each carries, then advertise those numbers in its ClassAd (§IV-D1). This
module reproduces that query surface against simulated devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import XeonPhi


@dataclass(frozen=True)
class MicInfo:
    """Static facts about one card, as ``micinfo`` would print them."""

    device_index: int
    name: str
    cores: int
    hardware_threads: int
    memory_mb: int
    usable_memory_mb: int


def query_device(device: XeonPhi, index: int = 0) -> MicInfo:
    """Inspect one simulated card."""
    spec = device.spec
    return MicInfo(
        device_index=index,
        name=device.name,
        cores=spec.cores,
        hardware_threads=spec.hardware_threads,
        memory_mb=spec.memory_mb,
        usable_memory_mb=spec.usable_memory_mb,
    )


def query_node(devices: list[XeonPhi]) -> list[MicInfo]:
    """Inspect every card on a node, in device order."""
    return [query_device(device, index) for index, device in enumerate(devices)]


def format_report(infos: list[MicInfo]) -> str:
    """Render a human-readable report similar to the real utility."""
    lines = [f"MicInfo: {len(infos)} device(s) found"]
    for info in infos:
        lines.append(f"  Device {info.device_index}: {info.name}")
        lines.append(f"    Cores          : {info.cores}")
        lines.append(f"    HW threads     : {info.hardware_threads}")
        lines.append(f"    Memory         : {info.memory_mb} MB")
        lines.append(f"    Usable memory  : {info.usable_memory_mb} MB")
    return "\n".join(lines)
