"""Per-device telemetry: step-function recording of busy cores and memory.

The motivation experiment of the paper (§III) monitors "the activity of
each processing core" and reports time-average utilization. We record the
busy-core count as a right-continuous step function and integrate it
exactly, which is equivalent to sampling at infinite frequency.

Queries are sublinear: ``value_at`` bisects for its segment, and
``integral`` combines a lazily-maintained prefix-sum cache (for windows
anchored at the start of the series) with a bisect to the first
overlapping segment (for interior windows). Both reproduce the naive
left-to-right accumulation term for term, so switching the lookup
strategy cannot change a single output bit.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterator

from ..sim import profile as _sim_profile


@dataclass
class StepSeries:
    """An exactly-integrable, right-continuous step function of time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    #: Lazily-extended prefix integrals: ``_prefix[i]`` is the integral
    #: over ``[times[0], times[i]]``. Never longer than ``times`` by more
    #: than a stale tail (resynced on use), so direct construction with
    #: pre-filled times/values stays valid.
    _prefix: list[float] = field(
        default_factory=list, init=False, repr=False, compare=False
    )

    def record(self, time: float, value: float) -> None:
        """Set the series to ``value`` from ``time`` onward."""
        profiler = _sim_profile.ACTIVE
        if profiler is not None:
            profiler.telemetry_records += 1
        times = self.times
        if times:
            last = times[-1]
            if time < last:
                raise ValueError(
                    f"time must not decrease (got {time} after {last})"
                )
            values = self.values
            if time == last:
                # Same-instant update: overwrite, keeping the series a
                # function — and drop the breakpoint entirely when the
                # overwrite reverts to the previous segment's value
                # (otherwise a redundant zero-length step survives).
                values[-1] = value
                if len(values) >= 2 and values[-2] == value:
                    times.pop()
                    values.pop()
                return
            if values[-1] == value:
                return  # No change; keep the series compact.
        times.append(time)
        self.values.append(value)

    def _prefix_integrals(self) -> list[float]:
        """Sync and return the prefix-integral cache."""
        prefix = self._prefix
        times, values = self.times, self.values
        n = len(times)
        if len(prefix) > n:
            # record() dropped a redundant breakpoint; earlier entries
            # are still exact.
            del prefix[n:]
        m = len(prefix)
        if m < n:
            if m == 0:
                prefix.append(0.0)
                m = 1
            acc = prefix[-1]
            for i in range(m, n):
                acc += values[i - 1] * (times[i] - times[i - 1])
                prefix.append(acc)
        return prefix

    def value_at(self, time: float) -> float:
        """The series value at ``time`` (0 before the first record)."""
        i = bisect_right(self.times, time) - 1
        return self.values[i] if i >= 0 else 0.0

    def integral(self, start: float, end: float) -> float:
        """Exact integral of the step function over ``[start, end]``."""
        if end < start:
            raise ValueError("end must be >= start")
        times = self.times
        if end == start or not times:
            return 0.0
        values = self.values
        n = len(times)
        if start <= times[0]:
            # Window anchored at (or before) the series start: the
            # prefix cache answers in O(log n). prefix[j] accumulates
            # the same terms in the same order as the naive walk, so
            # the result is bit-identical.
            j = bisect_left(times, end) - 1
            if j < 0:
                return 0.0  # Window ends before the first record.
            return self._prefix_integrals()[j] + values[j] * (end - times[j])
        # Interior window: bisect to the first overlapping segment and
        # walk only the covered segments (the naive loop's terms for
        # earlier segments are all skipped no-ops).
        total = 0.0
        i = bisect_right(times, start) - 1
        for k in range(i, n):
            seg_end = times[k + 1] if k + 1 < n else end
            lo = times[k] if times[k] > start else start
            hi = seg_end if seg_end < end else end
            if hi > lo:
                total += values[k] * (hi - lo)
            if seg_end >= end:
                break
        return total

    def mean(self, start: float, end: float) -> float:
        """Time-average value over ``[start, end]``.

        A zero-width window has a well-defined (empty) average of 0.0;
        an *inverted* window is a caller bug and raises, matching
        :meth:`integral` — it used to return 0.0 silently, which let
        swapped arguments masquerade as an idle device.
        """
        if end < start:
            raise ValueError("end must be >= start")
        if end == start:
            return 0.0
        return self.integral(start, end) / (end - start)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def __len__(self) -> int:
        return len(self.times)


@dataclass
class DeviceTelemetry:
    """Busy-core / thread / memory traces for one coprocessor."""

    busy_cores: StepSeries = field(default_factory=StepSeries)
    busy_threads: StepSeries = field(default_factory=StepSeries)
    resident_memory_mb: StepSeries = field(default_factory=StepSeries)
    #: Count of OOM-killer victims on this device.
    oom_kills: int = 0
    #: Times the device went down (card hang, reset, node crash).
    device_failures: int = 0
    #: Times the device came back (post-reset / node reboot).
    device_restores: int = 0

    def core_utilization(self, total_cores: int, start: float, end: float) -> float:
        """Fraction of core-time busy over ``[start, end]`` (paper's metric)."""
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        if end <= start:
            return 0.0
        return self.busy_cores.integral(start, end) / (total_cores * (end - start))
