"""Per-device telemetry: step-function recording of busy cores and memory.

The motivation experiment of the paper (§III) monitors "the activity of
each processing core" and reports time-average utilization. We record the
busy-core count as a right-continuous step function and integrate it
exactly, which is equivalent to sampling at infinite frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class StepSeries:
    """An exactly-integrable, right-continuous step function of time."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        """Set the series to ``value`` from ``time`` onward."""
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"time must not decrease (got {time} after {self.times[-1]})"
            )
        if self.times and time == self.times[-1]:
            # Same-instant update: overwrite, keeping the series a function.
            self.values[-1] = value
            return
        if self.values and self.values[-1] == value:
            return  # No change; keep the series compact.
        self.times.append(time)
        self.values.append(value)

    def value_at(self, time: float) -> float:
        """The series value at ``time`` (0 before the first record)."""
        result = 0.0
        for t, v in zip(self.times, self.values):
            if t > time:
                break
            result = v
        return result

    def integral(self, start: float, end: float) -> float:
        """Exact integral of the step function over ``[start, end]``."""
        if end < start:
            raise ValueError("end must be >= start")
        if end == start or not self.times:
            return 0.0
        total = 0.0
        # Walk segments [t_i, t_{i+1}) clipped to [start, end].
        for i, (t, v) in enumerate(zip(self.times, self.values)):
            seg_end = self.times[i + 1] if i + 1 < len(self.times) else end
            lo = max(t, start)
            hi = min(seg_end, end)
            if hi > lo:
                total += v * (hi - lo)
        return total

    def mean(self, start: float, end: float) -> float:
        """Time-average value over ``[start, end]``."""
        if end <= start:
            return 0.0
        return self.integral(start, end) / (end - start)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def __len__(self) -> int:
        return len(self.times)


@dataclass
class DeviceTelemetry:
    """Busy-core / thread / memory traces for one coprocessor."""

    busy_cores: StepSeries = field(default_factory=StepSeries)
    busy_threads: StepSeries = field(default_factory=StepSeries)
    resident_memory_mb: StepSeries = field(default_factory=StepSeries)
    #: Count of OOM-killer victims on this device.
    oom_kills: int = 0
    #: Times the device went down (card hang, reset, node crash).
    device_failures: int = 0
    #: Times the device came back (post-reset / node reboot).
    device_restores: int = 0

    def core_utilization(self, total_cores: int, start: float, end: float) -> float:
        """Fraction of core-time busy over ``[start, end]`` (paper's metric)."""
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        if end <= start:
            return 0.0
        return self.busy_cores.integral(start, end) / (total_cores * (end - start))
