"""Automatic job resource estimation (the paper's declared future work).

§IV-B: "We assume the user provides ... a maximum Xeon Phi memory
requirement, and a maximum thread requirement. This could be relaxed
with tools that automatically estimate jobs' resource requirements.
However that is outside the scope of this paper."

This module implements that tool for the simulated stack: it observes
completed runs per application and proposes declarations from empirical
quantiles with a safety margin. Under-declaring gets a job killed by
COSMIC's container (costly), while over-declaring wastes knapsack
capacity (reduces concurrency) — the estimator exposes that trade-off
through its ``quantile`` and ``headroom`` knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..workloads.profiles import JobProfile
from ..workloads.table1 import quantize_memory


@dataclass(frozen=True)
class ResourceEstimate:
    """A proposed declaration for one application."""

    app: str
    memory_mb: float
    threads: int
    samples: int
    observed_peak_mb: float

    def would_cover(self, profile: JobProfile) -> bool:
        """Whether a job with this declaration survives enforcement."""
        return (
            profile.peak_memory_mb <= self.memory_mb
            and profile.peak_threads <= self.threads
        )


class ResourceEstimator:
    """Quantile-with-headroom estimator over observed job executions.

    Parameters
    ----------
    quantile:
        Empirical quantile of observed peaks to use (default 0.95).
    headroom:
        Multiplicative safety margin on the memory quantile (default
        10%): new instances may exceed past peaks.
    quantum_mb:
        Declarations are rounded up to this quantum (the knapsack's).
    """

    def __init__(
        self,
        quantile: float = 0.95,
        headroom: float = 0.10,
        quantum_mb: float = 50.0,
    ) -> None:
        if not 0 < quantile <= 1:
            raise ValueError("quantile must lie in (0, 1]")
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        if quantum_mb <= 0:
            raise ValueError("quantum_mb must be positive")
        self.quantile = quantile
        self.headroom = headroom
        self.quantum_mb = quantum_mb
        self._memory: dict[str, list[float]] = {}
        self._threads: dict[str, list[int]] = {}

    # -- observation -----------------------------------------------------

    def observe(self, profile: JobProfile) -> None:
        """Record one completed job's actual peaks."""
        self._memory.setdefault(profile.app, []).append(profile.peak_memory_mb)
        self._threads.setdefault(profile.app, []).append(profile.peak_threads)

    def observe_many(self, profiles: list[JobProfile]) -> None:
        for profile in profiles:
            self.observe(profile)

    def sample_count(self, app: str) -> int:
        return len(self._memory.get(app, []))

    # -- estimation --------------------------------------------------------

    def estimate(self, app: str) -> ResourceEstimate:
        """Propose a declaration for ``app`` from the observed history."""
        memories = self._memory.get(app)
        if not memories:
            raise KeyError(f"no observations for app {app!r}")
        threads = self._threads[app]
        mem_q = float(np.quantile(memories, self.quantile))
        memory = quantize_memory(mem_q * (1.0 + self.headroom), self.quantum_mb)
        # Threads are discrete and architectural: take the observed max.
        thread_estimate = int(max(threads))
        return ResourceEstimate(
            app=app,
            memory_mb=memory,
            threads=thread_estimate,
            samples=len(memories),
            observed_peak_mb=float(max(memories)),
        )

    def declare(self, profile: JobProfile) -> JobProfile:
        """Rewrite a job's declarations using the estimate for its app.

        Falls back to the job's own declaration when the app is unknown.
        """
        try:
            estimate = self.estimate(profile.app)
        except KeyError:
            return profile
        from dataclasses import replace

        return replace(
            profile,
            declared_memory_mb=max(estimate.memory_mb, self.quantum_mb),
            declared_threads=max(estimate.threads, 1),
        )

    def coverage(self, app: str, profiles: list[JobProfile]) -> float:
        """Fraction of ``profiles`` the current estimate would cover."""
        estimate = self.estimate(app)
        relevant = [p for p in profiles if p.app == app]
        if not relevant:
            return 1.0
        covered = sum(1 for p in relevant if estimate.would_cover(p))
        return covered / len(relevant)
