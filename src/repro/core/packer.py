"""Pack one coprocessor: from pending jobs to a chosen subset.

This is the inner step of the paper's Fig. 4 loop: given the free memory
of one Xeon Phi and the set of still-unscheduled jobs, model the device
as a knapsack and choose the subset to run, maximizing concurrency via
the value function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from ..sim import profile as _profile
from .knapsack import (
    DEFAULT_QUANTUM_MB,
    Item,
    knapsack_1d,
    knapsack_cardinality,
    knapsack_thread_capped,
)
from .value import ValueFunction, paper_value_floored


#: Solved-packing memo bound; hitting it clears the whole cache (the
#: same wholesale policy as the ClassAd compile caches — keys recur in
#: phases, so partial eviction buys little).
_PACKING_CACHE_LIMIT = 4096


class PackableJob(Protocol):
    """What the packer needs to know about a job (JobProfile satisfies it)."""

    job_id: str

    @property
    def declared_memory_mb(self) -> float: ...

    @property
    def declared_threads(self) -> int: ...


@dataclass(frozen=True)
class DevicePacking:
    """The packer's decision for one device."""

    chosen: tuple[str, ...]  # job ids, in input order
    total_declared_mb: float
    total_declared_threads: int
    total_value: float

    @property
    def concurrency(self) -> int:
        """Number of co-scheduled jobs — the paper's objective."""
        return len(self.chosen)


class DevicePacker:
    """Turns (free memory, pending jobs) into a packing decision.

    Parameters
    ----------
    value_fn:
        Job value as a function of declared threads (default: Eq. 1 with
        a small floor; see :mod:`repro.core.value`).
    quantum_mb:
        Memory quantization for the DP (paper: 50 MB).
    thread_capacity:
        When set, enforce the paper's literal rule that packings whose
        declared threads exceed the hardware budget are worthless
        (memory x thread DP). When ``None`` (default), threads influence
        packing only through the value function and COSMIC handles
        runtime thread safety — the configuration that actually shares
        well (see ablation A2).
    """

    def __init__(
        self,
        value_fn: Optional[ValueFunction] = None,
        quantum_mb: float = DEFAULT_QUANTUM_MB,
        thread_capacity: Optional[int] = None,
    ) -> None:
        if quantum_mb <= 0:
            raise ValueError("quantum_mb must be positive")
        if thread_capacity is not None and thread_capacity <= 0:
            raise ValueError("thread_capacity must be positive")
        self.value_fn = value_fn or paper_value_floored
        self.quantum_mb = quantum_mb
        self.thread_capacity = thread_capacity
        # Declared thread counts cluster on a handful of values, and the
        # value function is pure, so memoizing per thread count removes
        # the per-item evaluation from the repack hot path.
        self._value_cache: dict[int, float] = {}
        # Item is a frozen dataclass, so instances can be shared between
        # packs; jobs cluster on a few (memory, threads) pairs and every
        # repack used to rebuild an Item per job.
        self._item_cache: dict[tuple[float, int], Item] = {}
        # Solved packings keyed by (item multiset-in-order, capacity,
        # count bound): repacks recur on identical candidate signatures —
        # a device freeing the same amount over a stable queue — and the
        # DP is pure, so the whole solve can be replayed from cache.
        self._packing_cache: dict[tuple, "PackResult"] = {}
        #: Knapsack DP invocations actually run vs avoided by the cache.
        self.solver_calls = 0
        self.packing_cache_hits = 0

    def _item_value(self, declared_threads: int) -> float:
        cached = self._value_cache.get(declared_threads)
        if cached is None:
            cached = max(self.value_fn(declared_threads), 0.0)
            self._value_cache[declared_threads] = cached
        return cached

    def pack(
        self,
        jobs: Sequence[PackableJob],
        free_memory_mb: float,
        max_jobs: Optional[int] = None,
    ) -> DevicePacking:
        """Choose the subset of ``jobs`` to run on a device with
        ``free_memory_mb`` of unreserved declared memory.

        ``max_jobs`` bounds concurrency (the node's free host slots).
        """
        if free_memory_mb < 0:
            raise ValueError("free_memory_mb must be non-negative")
        cache = self._item_cache
        items = []
        for job in jobs:
            key = (job.declared_memory_mb, job.declared_threads)
            item = cache.get(key)
            if item is None:
                item = Item(
                    weight=job.declared_memory_mb,
                    value=self._item_value(job.declared_threads),
                    threads=job.declared_threads,
                )
                cache[key] = item
            items.append(item)
        cache_key = (tuple(items), free_memory_mb, max_jobs)
        cached = self._packing_cache.get(cache_key)
        prof = _profile.ACTIVE
        if cached is not None:
            self.packing_cache_hits += 1
            if prof is not None:
                prof.packing_cache_hits += 1
            return self._to_packing(jobs, cached)
        if max_jobs is not None:
            # The count bound cannot bind when even the smallest items
            # cannot reach it within the memory capacity; drop the
            # cardinality dimension then (a large constant-factor win on
            # the per-completion repacks, where freed memory is small).
            positive = [item.weight for item in items if item.weight > 0]
            if positive:
                fit_bound = int(free_memory_mb // min(positive))
                if fit_bound <= max_jobs:
                    max_jobs = None

        self.solver_calls += 1
        if prof is not None:
            prof.solver_calls += 1
        if self.thread_capacity is not None:
            result = knapsack_thread_capped(
                items,
                free_memory_mb,
                thread_capacity=self.thread_capacity,
                quantum=self.quantum_mb,
            )
            if max_jobs is not None and result.count > max_jobs:
                result = self._trim(items, result, max_jobs)
        elif max_jobs is not None:
            result = knapsack_cardinality(
                items, free_memory_mb, max_items=max_jobs, quantum=self.quantum_mb
            )
        else:
            result = knapsack_1d(items, free_memory_mb, quantum=self.quantum_mb)

        if len(self._packing_cache) >= _PACKING_CACHE_LIMIT:
            self._packing_cache.clear()
        self._packing_cache[cache_key] = result
        return self._to_packing(jobs, result)

    @staticmethod
    def _to_packing(jobs: Sequence[PackableJob], result) -> DevicePacking:
        chosen_ids = tuple(jobs[i].job_id for i in result.indices)
        return DevicePacking(
            chosen=chosen_ids,
            total_declared_mb=result.total_weight,
            total_declared_threads=result.total_threads,
            total_value=result.total_value,
        )

    @staticmethod
    def _trim(items, result, max_jobs):
        """Keep the ``max_jobs`` most valuable chosen items.

        Dropping items never violates memory or thread feasibility, so
        the trimmed packing remains feasible (if mildly suboptimal).
        """
        from .knapsack import PackResult

        keep = sorted(
            result.indices, key=lambda i: items[i].value, reverse=True
        )[:max_jobs]
        keep.sort()
        return PackResult(
            indices=tuple(keep),
            total_value=sum(items[i].value for i in keep),
            total_weight=sum(items[i].weight for i in keep),
            total_threads=sum(items[i].threads for i in keep),
        )
