"""0-1 knapsack solvers for coprocessor packing.

The paper models every Xeon Phi as a knapsack whose capacity is the
card's physical memory, packs jobs (items, weight = declared memory)
with the standard dynamic-programming method, and exploits the fact that
memory requests quantize well: "if jobs can request memory in increments
of 50 MB, then w is 8GB/50MB = 160", making the DP effectively linear in
the number of jobs (§IV-C).

Three exact solvers are provided:

* :func:`knapsack_1d` — the paper's plain memory-capacity DP;
* :func:`knapsack_cardinality` — memory x item-count DP, used to respect
  a node's host-slot bound (one job per Condor slot);
* :func:`knapsack_thread_capped` — memory x thread DP, realizing the
  paper's "knapsack value is zero when total threads exceed hardware"
  rule as a hard second dimension;

plus :func:`brute_force` for property-testing the DPs on small inputs.

Memory model
------------
The solvers recover the chosen subset with Hirschberg-style
divide-and-conquer backtracking instead of a dense ``n x W (x K)``
``take`` tensor: each recursion level runs value-only forward DPs over
both item halves, finds the capacity split between them, and recurses.
The geometric shrinking of the halves keeps total work at ~2x a single
forward DP (still O(n·W) / O(n·W·K)), while live memory drops from
O(n·W·K) to O(W·K·log n) — independent of the queue length, which is
what lets the Fig. 4 hot path repack against 10k–100k pending jobs.

Quantization
------------
Weights and capacity are quantized on a *consistent* grid: weights round
up (``ceil``) and the capacity rounds down, but an item whose true
weight fits the true capacity while straddling the capacity's partial
trailing quantum is clamped to the quantized capacity. Such an item
occupies ``(quantum·W, capacity]``, so nothing but zero-weight items can
truly share the knapsack with it — clamping keeps it packable alone
without ever admitting an overweight packing. (Previously an item with
``weight == capacity`` was silently unpackable whenever the capacity was
not a quantum multiple.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: The paper's memory quantum: "increments of 50MB".
DEFAULT_QUANTUM_MB = 50.0

_TIE_EPS = 1e-12


@dataclass(frozen=True)
class Item:
    """One packable job: declared memory (MB), value, declared threads."""

    weight: float
    value: float
    threads: int = 0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.value < 0:
            raise ValueError("value must be non-negative")
        if self.threads < 0:
            raise ValueError("threads must be non-negative")


@dataclass(frozen=True)
class PackResult:
    """Solution of one knapsack: chosen item indices and totals."""

    indices: tuple[int, ...]
    total_value: float
    total_weight: float
    total_threads: int

    @property
    def count(self) -> int:
        return len(self.indices)


def _quantize(weight: float, quantum: float) -> int:
    """Conservative (round-up) quantization of a weight."""
    return int(math.ceil(weight / quantum - 1e-12))


def _consistent_grid(
    raw: Sequence[float], capacity: float, quantum: float
) -> tuple[int, list[int]]:
    """Quantize ``capacity`` and per-item weights on one grid.

    Returns ``(W, weights)`` such that

    * any item with true weight <= capacity gets a quantized weight <= W
      (it stays packable alone), and
    * any packing feasible in quantized arithmetic is feasible in true
      weights (never overweight).

    Items that cannot fit even alone get weight ``W + 1``.
    """
    W = int(math.floor(capacity / quantum + 1e-12))
    weights: list[int] = []
    if W == 0:
        # Sub-quantum capacity: any two fitting positive-weight items may
        # still be truly overweight, so admit at most one at a time.
        W = 1 if capacity > 0 else 0
        for w in raw:
            if w <= 0:
                weights.append(0)
            elif w <= capacity:
                weights.append(1)
            else:
                weights.append(W + 1)
        return W, weights
    if len(raw) >= 32:
        # Vectorized quantization for large queues. np.ceil on float64
        # performs the identical IEEE operation to math.ceil, so the
        # result matches the scalar path bit for bit.
        arr = np.asarray(raw, dtype=float)
        q = np.ceil(arr / quantum - 1e-12).astype(np.int64)
        q[(q > W) & (arr <= capacity)] = W
        return W, q.tolist()
    for w in raw:
        q = _quantize(w, quantum)
        if q > W and w <= capacity:
            # Exact fit inside the capacity's partial trailing quantum:
            # the item occupies (quantum*W, capacity], so only zero-weight
            # items can truly join it — clamping to W is overweight-safe.
            q = W
        weights.append(q)
    return W, weights


def _result(items: Sequence[Item], chosen: list[int]) -> PackResult:
    chosen_sorted = tuple(sorted(chosen))
    return PackResult(
        indices=chosen_sorted,
        total_value=sum(items[i].value for i in chosen_sorted),
        total_weight=sum(items[i].weight for i in chosen_sorted),
        total_threads=sum(items[i].threads for i in chosen_sorted),
    )


# -- value-only forward DPs (no take tensors) --------------------------------


def _dp_values_1d(
    weights: Sequence[int], values: Sequence[float], lo: int, hi: int, W: int
) -> np.ndarray:
    """Best value of items[lo:hi] at every capacity 0..W ("at most" semantics)."""
    dp = np.zeros(W + 1)
    if hi - lo == 1:
        # Single item: the DP profile is a step function — fill directly
        # instead of paying the generic add/maximum pair.
        w, v = weights[lo], values[lo]
        if v > 0 and w <= W:
            dp[w:] = v
        return dp
    if hi - lo == 2:
        # Two items: three plateau fills reproduce the generic loop's
        # cell values exactly (va + vb dominates both single values, and
        # the sums are computed by the same float additions).
        wa, va = weights[lo], values[lo]
        wb, vb = weights[lo + 1], values[lo + 1]
        fa = va > 0 and wa <= W
        fb = vb > 0 and wb <= W
        if fa:
            dp[wa:] = va
        if fb:
            if fa:
                np.maximum(dp[wb:], vb, out=dp[wb:])
                if wa + wb <= W:
                    dp[wa + wb :] = va + vb
            else:
                dp[wb:] = vb
        return dp
    for i in range(lo, hi):
        w, v = weights[i], values[i]
        if w > W or v <= 0:
            continue
        if w == 0:
            dp += v
        else:
            # The addition materializes a temp from the pre-update dp, so
            # the in-place maximum keeps 0-1 (not unbounded) semantics.
            np.maximum(dp[w:], dp[: W + 1 - w] + v, out=dp[w:])
    return dp


def _dp_values_2d(
    weights: Sequence[int],
    costs: Sequence[int],
    values: Sequence[float],
    lo: int,
    hi: int,
    W: int,
    K: int,
) -> np.ndarray:
    """2-D variant: second dimension is item count or quantized threads."""
    dp = np.zeros((W + 1, K + 1))
    if hi - lo == 1:
        w, k, v = weights[lo], costs[lo], values[lo]
        if v > 0 and w <= W and k <= K:
            dp[w:, k:] = v
        return dp
    if hi - lo == 2:
        # Two-item plateau fills; see _dp_values_1d.
        wa, ka, va = weights[lo], costs[lo], values[lo]
        wb, kb, vb = weights[lo + 1], costs[lo + 1], values[lo + 1]
        fa = va > 0 and wa <= W and ka <= K
        fb = vb > 0 and wb <= W and kb <= K
        if fa:
            dp[wa:, ka:] = va
        if fb:
            if fa:
                np.maximum(dp[wb:, kb:], vb, out=dp[wb:, kb:])
                if wa + wb <= W and ka + kb <= K:
                    dp[wa + wb :, ka + kb :] = va + vb
            else:
                dp[wb:, kb:] = vb
        return dp
    for i in range(lo, hi):
        w, k, v = weights[i], costs[i], values[i]
        if w > W or k > K or v <= 0:
            continue
        if w == 0 and k == 0:
            dp += v
        else:
            np.maximum(
                dp[w:, k:], dp[: W + 1 - w, : K + 1 - k] + v, out=dp[w:, k:]
            )
    return dp


# -- divide-and-conquer reconstruction ---------------------------------------
#
# All-fit shortcut. At any recursion node, if the positive-value items in
# [lo, hi) *collectively* fit the residual capacity, the optimal subset
# is exactly those items (dropping one strictly loses its value; adding
# non-positive items never gains), and that is also precisely what the
# divide-and-conquer would return: the value profile over the positive
# items of a half only reaches its full-value plateau at capacities >=
# the half's total positive weight, so the first-index argmax split hands
# each half enough capacity for *all* its positive items and the
# induction closes at the leaves. Unfittable items carry quantized
# weight W + 1, which keeps any window containing one above the residual
# capacity — the shortcut can never admit them. Prefix sums over the
# positive-value items make the check O(1) per node.


def _positive_prefix(weights: Sequence[int], values: Sequence[float]) -> list[int]:
    """Prefix sums of quantized weight over positive-value items only."""
    prefix = [0] * (len(weights) + 1)
    total = 0
    for i, (w, v) in enumerate(zip(weights, values)):
        if v > 0:
            total += w
        prefix[i + 1] = total
    return prefix


def _min_positive(weights: Sequence[int], values: Sequence[float], default: int) -> int:
    """Smallest quantized weight among positive-value items.

    ``default`` (capacity + 1) is returned when no item has positive
    value, which makes the caller's none-fits prune always fire — the
    optimal subset of a window with no positive items is empty.
    """
    best = default
    for w, v in zip(weights, values):
        if v > 0 and w < best:
            best = w
    return best


def _backtrack_1d(
    weights: Sequence[int],
    values: Sequence[float],
    prefix_w: Sequence[int],
    minw: int,
    lo: int,
    hi: int,
    W: int,
    chosen: list[int],
) -> None:
    """Append the optimal subset of items[lo:hi] at capacity W to ``chosen``."""
    if lo >= hi or W < minw:
        # minw is the cheapest positive item anywhere, so no positive
        # item in this window can fit either — the subtree is empty.
        return
    if prefix_w[hi] - prefix_w[lo] <= W:
        chosen.extend(i for i in range(lo, hi) if values[i] > 0)
        return
    if hi - lo == 1:
        if values[lo] > 0 and weights[lo] <= W:
            chosen.append(lo)
        return
    if hi - lo == 2:
        # Closed form for a two-item node that failed the all-fit check
        # (so both together never fit): take the lone fitting item, or
        # the more valuable of the two; the argmax's first-index rule
        # resolves an exact value tie in favour of the *second* item
        # (index (0, …) wins the flat argmax). Mirrors the D&C exactly.
        a, b = lo, lo + 1
        fa = values[a] > 0 and weights[a] <= W
        fb = values[b] > 0 and weights[b] <= W
        if fa and (not fb or values[a] > values[b]):
            chosen.append(a)
        elif fb:
            chosen.append(b)
        return
    if hi - lo == 3:
        # Three-item node: find the D&C capacity split without arrays.
        # The combined profile left(m) + right(W - m) is piecewise
        # constant: the single-item left profile steps up at m = wa, and
        # the pair right profile steps down just past m = W - w for each
        # right-subset weight w. Every constant run starts at one of
        # those breakpoints, so evaluating only the breakpoints (in
        # ascending order) yields both the maximum and the argmax's
        # first flat index — exactly what the array argmax returns.
        wa, va = weights[lo], values[lo]
        wb, vb = weights[lo + 1], values[lo + 1]
        wc, vc = weights[lo + 2], values[lo + 2]
        pa = va > 0
        pb = vb > 0
        pc = vc > 0
        pair = vb + vc

        def _combined(m: int) -> float:
            cap = W - m
            best = 0.0
            if pb and wb <= cap:
                best = vb
            if pc and wc <= cap and vc > best:
                best = vc
            if pb and pc and wb + wc <= cap and pair > best:
                best = pair
            return va + best if (pa and wa <= m) else best

        cps = sorted(
            {
                p
                for p in (0, wa, W - wb + 1, W - wc + 1, W - wb - wc + 1)
                if 0 <= p <= W
            }
        )
        vals = [_combined(m) for m in cps]
        split = cps[vals.index(max(vals))]
        _backtrack_1d(weights, values, prefix_w, minw, lo, lo + 1, split, chosen)
        _backtrack_1d(
            weights, values, prefix_w, minw, lo + 1, hi, W - split, chosen
        )
        return
    mid = (lo + hi) // 2
    left = _dp_values_1d(weights, values, lo, mid, W)
    right = _dp_values_1d(weights, values, mid, hi, W)
    # Optimal split of the capacity between the halves ("at most"
    # semantics makes both profiles monotone, so one pass suffices).
    left += right[::-1]
    split = int(left.argmax())
    _backtrack_1d(weights, values, prefix_w, minw, lo, mid, split, chosen)
    _backtrack_1d(weights, values, prefix_w, minw, mid, hi, W - split, chosen)


def _backtrack_2d(
    weights: Sequence[int],
    costs: Sequence[int],
    values: Sequence[float],
    prefix_w: Sequence[int],
    prefix_k: Sequence[int],
    minw: int,
    mink: int,
    lo: int,
    hi: int,
    W: int,
    K: int,
    chosen: list[int],
) -> None:
    if lo >= hi or W < minw or K < mink:
        # No positive item anywhere is cheap enough for this residual
        # capacity (in one of the dimensions), so the subtree is empty.
        return
    if (
        prefix_w[hi] - prefix_w[lo] <= W
        and prefix_k[hi] - prefix_k[lo] <= K
    ):
        chosen.extend(i for i in range(lo, hi) if values[i] > 0)
        return
    if hi - lo == 1:
        if values[lo] > 0 and weights[lo] <= W and costs[lo] <= K:
            chosen.append(lo)
        return
    if hi - lo == 2:
        # Two-item closed form (see _backtrack_1d); the all-fit check
        # already failed, so the pair can never be taken together.
        a, b = lo, lo + 1
        fa = values[a] > 0 and weights[a] <= W and costs[a] <= K
        fb = values[b] > 0 and weights[b] <= W and costs[b] <= K
        if fa and (not fb or values[a] > values[b]):
            chosen.append(a)
        elif fb:
            chosen.append(b)
        return
    if hi - lo == 3:
        # Three-item node without arrays (see _backtrack_1d): the
        # combined profile is constant on rectangles whose corners are
        # the step breakpoints of either half, so a lexicographic scan
        # of the breakpoint grid reproduces the array argmax exactly.
        wa, ka, va = weights[lo], costs[lo], values[lo]
        wb, kb, vb = weights[lo + 1], costs[lo + 1], values[lo + 1]
        wc, kc, vc = weights[lo + 2], costs[lo + 2], values[lo + 2]
        pa = va > 0
        pb = vb > 0
        pc = vc > 0
        pair = vb + vc

        def _combined(m: int, k: int) -> float:
            wcap = W - m
            kcap = K - k
            best = 0.0
            if pb and wb <= wcap and kb <= kcap:
                best = vb
            if pc and wc <= wcap and kc <= kcap and vc > best:
                best = vc
            if (
                pb
                and pc
                and wb + wc <= wcap
                and kb + kc <= kcap
                and pair > best
            ):
                best = pair
            return va + best if (pa and wa <= m and ka <= k) else best

        cps_m = sorted(
            {
                p
                for p in (0, wa, W - wb + 1, W - wc + 1, W - wb - wc + 1)
                if 0 <= p <= W
            }
        )
        cps_k = sorted(
            {
                p
                for p in (0, ka, K - kb + 1, K - kc + 1, K - kb - kc + 1)
                if 0 <= p <= K
            }
        )
        grid = [(_combined(m, k), m, k) for m in cps_m for k in cps_k]
        best_v = max(v for v, _, _ in grid)
        _, m, k = next(t for t in grid if t[0] == best_v)
        _backtrack_2d(
            weights, costs, values, prefix_w, prefix_k, minw, mink,
            lo, lo + 1, m, k, chosen,
        )
        _backtrack_2d(
            weights, costs, values, prefix_w, prefix_k, minw, mink,
            lo + 1, hi, W - m, K - k, chosen,
        )
        return
    mid = (lo + hi) // 2
    left = _dp_values_2d(weights, costs, values, lo, mid, W, K)
    right = _dp_values_2d(weights, costs, values, mid, hi, W, K)
    # Flipping both axes of a C-contiguous array reverses its flat
    # buffer, so the combine runs as a single 1-D strided add instead of
    # a 2-D reversed iteration (same element pairing, same additions).
    flat = left.reshape(-1)
    flat += right.reshape(-1)[::-1]
    m, k = divmod(int(flat.argmax()), K + 1)
    _backtrack_2d(
        weights, costs, values, prefix_w, prefix_k, minw, mink,
        lo, mid, m, k, chosen,
    )
    _backtrack_2d(
        weights, costs, values, prefix_w, prefix_k, minw, mink,
        mid, hi, W - m, K - k, chosen,
    )


# -- public solvers -----------------------------------------------------------


def knapsack_1d(
    items: Sequence[Item],
    capacity: float,
    quantum: float = DEFAULT_QUANTUM_MB,
) -> PackResult:
    """The paper's DP: maximize total value within the memory capacity.

    O(n * w) time with w = capacity / quantum (vectorized over the
    capacity axis with NumPy), O(w * log n) live memory.
    """
    _validate(capacity, quantum)
    if len(items) == 0:
        return _result(items, [])
    W, weights = _consistent_grid(
        [item.weight for item in items], capacity, quantum
    )
    values = [item.value for item in items]
    chosen: list[int] = []
    prefix_w = _positive_prefix(weights, values)
    minw = _min_positive(weights, values, W + 1)
    _backtrack_1d(weights, values, prefix_w, minw, 0, len(items), W, chosen)
    return _result(items, chosen)


def knapsack_cardinality(
    items: Sequence[Item],
    capacity: float,
    max_items: int,
    quantum: float = DEFAULT_QUANTUM_MB,
) -> PackResult:
    """Memory-capacity DP with a hard bound on the number of items.

    The extra dimension models the host-slot limit: a node can only run
    as many concurrent jobs as it has free Condor slots.
    """
    _validate(capacity, quantum)
    if max_items < 0:
        raise ValueError("max_items must be non-negative")
    n = len(items)
    K = min(max_items, n)
    if n == 0 or K == 0:
        return _result(items, [])
    W, weights = _consistent_grid(
        [item.weight for item in items], capacity, quantum
    )
    values = [item.value for item in items]
    costs = [1] * n  # every item occupies one host slot
    chosen: list[int] = []
    prefix_w = _positive_prefix(weights, values)
    prefix_k = _positive_prefix(costs, values)
    minw = _min_positive(weights, values, W + 1)
    mink = _min_positive(costs, values, K + 1)
    _backtrack_2d(
        weights, costs, values, prefix_w, prefix_k, minw, mink,
        0, n, W, K, chosen,
    )
    return _result(items, chosen)


def knapsack_thread_capped(
    items: Sequence[Item],
    capacity: float,
    thread_capacity: int,
    quantum: float = DEFAULT_QUANTUM_MB,
    thread_quantum: int = 4,
) -> PackResult:
    """Memory x thread DP: packings exceeding the thread budget are
    infeasible (the literal reading of the paper's zero-value rule)."""
    _validate(capacity, quantum)
    if thread_capacity <= 0:
        raise ValueError("thread_capacity must be positive")
    if thread_quantum <= 0:
        raise ValueError("thread_quantum must be positive")
    n = len(items)
    if n == 0:
        return _result(items, [])
    W, weights = _consistent_grid(
        [item.weight for item in items], capacity, quantum
    )
    T, threads = _consistent_grid(
        [float(item.threads) for item in items],
        float(thread_capacity),
        float(thread_quantum),
    )
    values = [item.value for item in items]
    chosen: list[int] = []
    prefix_w = _positive_prefix(weights, values)
    prefix_t = _positive_prefix(threads, values)
    minw = _min_positive(weights, values, W + 1)
    mint = _min_positive(threads, values, T + 1)
    _backtrack_2d(
        weights, threads, values, prefix_w, prefix_t, minw, mint,
        0, n, W, T, chosen,
    )
    return _result(items, chosen)


def brute_force(
    items: Sequence[Item],
    capacity: float,
    max_items: Optional[int] = None,
    thread_capacity: Optional[int] = None,
    fit_tolerance: float = 0.0,
) -> PackResult:
    """Exhaustive reference solver (exact weights, no quantization).

    Exponential — for tests on small instances only. ``fit_tolerance``
    admits sets overweight by at most that much: when weights are
    ``k * quantum`` floats, an exact-fit set's sum can exceed capacity
    by an ulp that the grid-exact DPs (correctly) never see.
    """
    n = len(items)
    if n > 20:
        raise ValueError("brute_force is limited to 20 items")
    best: Optional[PackResult] = None
    for mask in range(1 << n):
        chosen = [i for i in range(n) if mask >> i & 1]
        weight = sum(items[i].weight for i in chosen)
        if weight > capacity + fit_tolerance:
            continue
        if max_items is not None and len(chosen) > max_items:
            continue
        threads = sum(items[i].threads for i in chosen)
        if thread_capacity is not None and threads > thread_capacity:
            continue
        value = sum(items[i].value for i in chosen)
        if best is None or value > best.total_value + _TIE_EPS:
            best = PackResult(tuple(chosen), value, weight, threads)
    assert best is not None  # the empty set is always feasible
    return best


def _validate(capacity: float, quantum: float) -> None:
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if quantum <= 0:
        raise ValueError("quantum must be positive")
