"""0-1 knapsack solvers for coprocessor packing.

The paper models every Xeon Phi as a knapsack whose capacity is the
card's physical memory, packs jobs (items, weight = declared memory)
with the standard dynamic-programming method, and exploits the fact that
memory requests quantize well: "if jobs can request memory in increments
of 50 MB, then w is 8GB/50MB = 160", making the DP effectively linear in
the number of jobs (§IV-C).

Three exact solvers are provided:

* :func:`knapsack_1d` — the paper's plain memory-capacity DP;
* :func:`knapsack_cardinality` — memory x item-count DP, used to respect
  a node's host-slot bound (one job per Condor slot);
* :func:`knapsack_thread_capped` — memory x thread DP, realizing the
  paper's "knapsack value is zero when total threads exceed hardware"
  rule as a hard second dimension;

plus :func:`brute_force` for property-testing the DPs on small inputs.

Memory model
------------
The solvers recover the chosen subset with Hirschberg-style
divide-and-conquer backtracking instead of a dense ``n x W (x K)``
``take`` tensor: each recursion level runs value-only forward DPs over
both item halves, finds the capacity split between them, and recurses.
The geometric shrinking of the halves keeps total work at ~2x a single
forward DP (still O(n·W) / O(n·W·K)), while live memory drops from
O(n·W·K) to O(W·K·log n) — independent of the queue length, which is
what lets the Fig. 4 hot path repack against 10k–100k pending jobs.

Quantization
------------
Weights and capacity are quantized on a *consistent* grid: weights round
up (``ceil``) and the capacity rounds down, but an item whose true
weight fits the true capacity while straddling the capacity's partial
trailing quantum is clamped to the quantized capacity. Such an item
occupies ``(quantum·W, capacity]``, so nothing but zero-weight items can
truly share the knapsack with it — clamping keeps it packable alone
without ever admitting an overweight packing. (Previously an item with
``weight == capacity`` was silently unpackable whenever the capacity was
not a quantum multiple.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: The paper's memory quantum: "increments of 50MB".
DEFAULT_QUANTUM_MB = 50.0

_TIE_EPS = 1e-12


@dataclass(frozen=True)
class Item:
    """One packable job: declared memory (MB), value, declared threads."""

    weight: float
    value: float
    threads: int = 0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.value < 0:
            raise ValueError("value must be non-negative")
        if self.threads < 0:
            raise ValueError("threads must be non-negative")


@dataclass(frozen=True)
class PackResult:
    """Solution of one knapsack: chosen item indices and totals."""

    indices: tuple[int, ...]
    total_value: float
    total_weight: float
    total_threads: int

    @property
    def count(self) -> int:
        return len(self.indices)


def _quantize(weight: float, quantum: float) -> int:
    """Conservative (round-up) quantization of a weight."""
    return int(math.ceil(weight / quantum - 1e-12))


def _consistent_grid(
    raw: Sequence[float], capacity: float, quantum: float
) -> tuple[int, list[int]]:
    """Quantize ``capacity`` and per-item weights on one grid.

    Returns ``(W, weights)`` such that

    * any item with true weight <= capacity gets a quantized weight <= W
      (it stays packable alone), and
    * any packing feasible in quantized arithmetic is feasible in true
      weights (never overweight).

    Items that cannot fit even alone get weight ``W + 1``.
    """
    W = int(math.floor(capacity / quantum + 1e-12))
    weights: list[int] = []
    if W == 0:
        # Sub-quantum capacity: any two fitting positive-weight items may
        # still be truly overweight, so admit at most one at a time.
        W = 1 if capacity > 0 else 0
        for w in raw:
            if w <= 0:
                weights.append(0)
            elif w <= capacity:
                weights.append(1)
            else:
                weights.append(W + 1)
        return W, weights
    for w in raw:
        q = _quantize(w, quantum)
        if q > W and w <= capacity:
            # Exact fit inside the capacity's partial trailing quantum:
            # the item occupies (quantum*W, capacity], so only zero-weight
            # items can truly join it — clamping to W is overweight-safe.
            q = W
        weights.append(q)
    return W, weights


def _result(items: Sequence[Item], chosen: list[int]) -> PackResult:
    chosen_sorted = tuple(sorted(chosen))
    return PackResult(
        indices=chosen_sorted,
        total_value=sum(items[i].value for i in chosen_sorted),
        total_weight=sum(items[i].weight for i in chosen_sorted),
        total_threads=sum(items[i].threads for i in chosen_sorted),
    )


# -- value-only forward DPs (no take tensors) --------------------------------


def _dp_values_1d(
    weights: Sequence[int], values: Sequence[float], lo: int, hi: int, W: int
) -> np.ndarray:
    """Best value of items[lo:hi] at every capacity 0..W ("at most" semantics)."""
    dp = np.zeros(W + 1)
    for i in range(lo, hi):
        w, v = weights[i], values[i]
        if w > W or v <= 0:
            continue
        if w == 0:
            dp += v
        else:
            # The addition materializes a temp from the pre-update dp, so
            # the in-place maximum keeps 0-1 (not unbounded) semantics.
            np.maximum(dp[w:], dp[: W + 1 - w] + v, out=dp[w:])
    return dp


def _dp_values_2d(
    weights: Sequence[int],
    costs: Sequence[int],
    values: Sequence[float],
    lo: int,
    hi: int,
    W: int,
    K: int,
) -> np.ndarray:
    """2-D variant: second dimension is item count or quantized threads."""
    dp = np.zeros((W + 1, K + 1))
    for i in range(lo, hi):
        w, k, v = weights[i], costs[i], values[i]
        if w > W or k > K or v <= 0:
            continue
        if w == 0 and k == 0:
            dp += v
        else:
            np.maximum(
                dp[w:, k:], dp[: W + 1 - w, : K + 1 - k] + v, out=dp[w:, k:]
            )
    return dp


# -- divide-and-conquer reconstruction ---------------------------------------


def _backtrack_1d(
    weights: Sequence[int],
    values: Sequence[float],
    lo: int,
    hi: int,
    W: int,
    chosen: list[int],
) -> None:
    """Append the optimal subset of items[lo:hi] at capacity W to ``chosen``."""
    if lo >= hi or W < 0:
        return
    if hi - lo == 1:
        if values[lo] > 0 and weights[lo] <= W:
            chosen.append(lo)
        return
    mid = (lo + hi) // 2
    left = _dp_values_1d(weights, values, lo, mid, W)
    right = _dp_values_1d(weights, values, mid, hi, W)
    # Optimal split of the capacity between the halves ("at most"
    # semantics makes both profiles monotone, so one pass suffices).
    split = int(np.argmax(left + right[::-1]))
    _backtrack_1d(weights, values, lo, mid, split, chosen)
    _backtrack_1d(weights, values, mid, hi, W - split, chosen)


def _backtrack_2d(
    weights: Sequence[int],
    costs: Sequence[int],
    values: Sequence[float],
    lo: int,
    hi: int,
    W: int,
    K: int,
    chosen: list[int],
) -> None:
    if lo >= hi or W < 0 or K < 0:
        return
    if hi - lo == 1:
        if values[lo] > 0 and weights[lo] <= W and costs[lo] <= K:
            chosen.append(lo)
        return
    mid = (lo + hi) // 2
    left = _dp_values_2d(weights, costs, values, lo, mid, W, K)
    right = _dp_values_2d(weights, costs, values, mid, hi, W, K)
    m, k = np.unravel_index(
        int(np.argmax(left + right[::-1, ::-1])), left.shape
    )
    _backtrack_2d(weights, costs, values, lo, mid, int(m), int(k), chosen)
    _backtrack_2d(
        weights, costs, values, mid, hi, W - int(m), K - int(k), chosen
    )


# -- public solvers -----------------------------------------------------------


def knapsack_1d(
    items: Sequence[Item],
    capacity: float,
    quantum: float = DEFAULT_QUANTUM_MB,
) -> PackResult:
    """The paper's DP: maximize total value within the memory capacity.

    O(n * w) time with w = capacity / quantum (vectorized over the
    capacity axis with NumPy), O(w * log n) live memory.
    """
    _validate(capacity, quantum)
    if len(items) == 0:
        return _result(items, [])
    W, weights = _consistent_grid(
        [item.weight for item in items], capacity, quantum
    )
    values = [item.value for item in items]
    chosen: list[int] = []
    _backtrack_1d(weights, values, 0, len(items), W, chosen)
    return _result(items, chosen)


def knapsack_cardinality(
    items: Sequence[Item],
    capacity: float,
    max_items: int,
    quantum: float = DEFAULT_QUANTUM_MB,
) -> PackResult:
    """Memory-capacity DP with a hard bound on the number of items.

    The extra dimension models the host-slot limit: a node can only run
    as many concurrent jobs as it has free Condor slots.
    """
    _validate(capacity, quantum)
    if max_items < 0:
        raise ValueError("max_items must be non-negative")
    n = len(items)
    K = min(max_items, n)
    if n == 0 or K == 0:
        return _result(items, [])
    W, weights = _consistent_grid(
        [item.weight for item in items], capacity, quantum
    )
    values = [item.value for item in items]
    costs = [1] * n  # every item occupies one host slot
    chosen: list[int] = []
    _backtrack_2d(weights, costs, values, 0, n, W, K, chosen)
    return _result(items, chosen)


def knapsack_thread_capped(
    items: Sequence[Item],
    capacity: float,
    thread_capacity: int,
    quantum: float = DEFAULT_QUANTUM_MB,
    thread_quantum: int = 4,
) -> PackResult:
    """Memory x thread DP: packings exceeding the thread budget are
    infeasible (the literal reading of the paper's zero-value rule)."""
    _validate(capacity, quantum)
    if thread_capacity <= 0:
        raise ValueError("thread_capacity must be positive")
    if thread_quantum <= 0:
        raise ValueError("thread_quantum must be positive")
    n = len(items)
    if n == 0:
        return _result(items, [])
    W, weights = _consistent_grid(
        [item.weight for item in items], capacity, quantum
    )
    T, threads = _consistent_grid(
        [float(item.threads) for item in items],
        float(thread_capacity),
        float(thread_quantum),
    )
    values = [item.value for item in items]
    chosen: list[int] = []
    _backtrack_2d(weights, threads, values, 0, n, W, T, chosen)
    return _result(items, chosen)


def brute_force(
    items: Sequence[Item],
    capacity: float,
    max_items: Optional[int] = None,
    thread_capacity: Optional[int] = None,
) -> PackResult:
    """Exhaustive reference solver (exact weights, no quantization).

    Exponential — for tests on small instances only.
    """
    n = len(items)
    if n > 20:
        raise ValueError("brute_force is limited to 20 items")
    best: Optional[PackResult] = None
    for mask in range(1 << n):
        chosen = [i for i in range(n) if mask >> i & 1]
        weight = sum(items[i].weight for i in chosen)
        if weight > capacity:
            continue
        if max_items is not None and len(chosen) > max_items:
            continue
        threads = sum(items[i].threads for i in chosen)
        if thread_capacity is not None and threads > thread_capacity:
            continue
        value = sum(items[i].value for i in chosen)
        if best is None or value > best.total_value + _TIE_EPS:
            best = PackResult(tuple(chosen), value, weight, threads)
    assert best is not None  # the empty set is always feasible
    return best


def _validate(capacity: float, quantum: float) -> None:
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if quantum <= 0:
        raise ValueError("quantum must be positive")
