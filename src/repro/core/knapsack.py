"""0-1 knapsack solvers for coprocessor packing.

The paper models every Xeon Phi as a knapsack whose capacity is the
card's physical memory, packs jobs (items, weight = declared memory)
with the standard dynamic-programming method, and exploits the fact that
memory requests quantize well: "if jobs can request memory in increments
of 50 MB, then w is 8GB/50MB = 160", making the DP effectively linear in
the number of jobs (§IV-C).

Three exact solvers are provided:

* :func:`knapsack_1d` — the paper's plain memory-capacity DP;
* :func:`knapsack_cardinality` — memory x item-count DP, used to respect
  a node's host-slot bound (one job per Condor slot);
* :func:`knapsack_thread_capped` — memory x thread DP, realizing the
  paper's "knapsack value is zero when total threads exceed hardware"
  rule as a hard second dimension;

plus :func:`brute_force` for property-testing the DPs on small inputs.

All solvers quantize weights with ``ceil`` so a returned packing never
exceeds the true capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: The paper's memory quantum: "increments of 50MB".
DEFAULT_QUANTUM_MB = 50.0

_TIE_EPS = 1e-12


@dataclass(frozen=True)
class Item:
    """One packable job: declared memory (MB), value, declared threads."""

    weight: float
    value: float
    threads: int = 0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("weight must be non-negative")
        if self.value < 0:
            raise ValueError("value must be non-negative")
        if self.threads < 0:
            raise ValueError("threads must be non-negative")


@dataclass(frozen=True)
class PackResult:
    """Solution of one knapsack: chosen item indices and totals."""

    indices: tuple[int, ...]
    total_value: float
    total_weight: float
    total_threads: int

    @property
    def count(self) -> int:
        return len(self.indices)


def _quantize(weight: float, quantum: float) -> int:
    """Conservative (round-up) quantization of a weight."""
    return int(math.ceil(weight / quantum - 1e-12))


def _result(items: Sequence[Item], chosen: list[int]) -> PackResult:
    chosen_sorted = tuple(sorted(chosen))
    return PackResult(
        indices=chosen_sorted,
        total_value=sum(items[i].value for i in chosen_sorted),
        total_weight=sum(items[i].weight for i in chosen_sorted),
        total_threads=sum(items[i].threads for i in chosen_sorted),
    )


def knapsack_1d(
    items: Sequence[Item],
    capacity: float,
    quantum: float = DEFAULT_QUANTUM_MB,
) -> PackResult:
    """The paper's DP: maximize total value within the memory capacity.

    O(n * w) with w = capacity / quantum, vectorized over the capacity
    axis with NumPy.
    """
    _validate(capacity, quantum)
    n = len(items)
    W = int(capacity // quantum)
    if n == 0:
        return _result(items, [])

    weights = [_quantize(item.weight, quantum) for item in items]
    dp = np.zeros(W + 1)
    take = np.zeros((n, W + 1), dtype=bool)
    for i, item in enumerate(items):
        w = weights[i]
        if w > W:
            continue
        if w == 0:
            if item.value > 0:
                dp += item.value
                take[i, :] = True
            continue
        candidate = np.full(W + 1, -np.inf)
        candidate[w:] = dp[: W + 1 - w] + item.value
        better = candidate > dp + _TIE_EPS
        take[i] = better
        np.copyto(dp, candidate, where=better)

    chosen: list[int] = []
    m = W
    for i in range(n - 1, -1, -1):
        if take[i, m]:
            chosen.append(i)
            m -= weights[i]
    return _result(items, chosen)


def knapsack_cardinality(
    items: Sequence[Item],
    capacity: float,
    max_items: int,
    quantum: float = DEFAULT_QUANTUM_MB,
) -> PackResult:
    """Memory-capacity DP with a hard bound on the number of items.

    The extra dimension models the host-slot limit: a node can only run
    as many concurrent jobs as it has free Condor slots.
    """
    _validate(capacity, quantum)
    if max_items < 0:
        raise ValueError("max_items must be non-negative")
    n = len(items)
    W = int(capacity // quantum)
    K = min(max_items, n)
    if n == 0 or K == 0:
        return _result(items, [])

    weights = [_quantize(item.weight, quantum) for item in items]
    dp = np.full((W + 1, K + 1), -np.inf)
    dp[:, 0] = 0.0
    take = np.zeros((n, W + 1, K + 1), dtype=bool)
    for i, item in enumerate(items):
        w = weights[i]
        if w > W:
            continue
        candidate = np.full((W + 1, K + 1), -np.inf)
        candidate[w:, 1:] = dp[: W + 1 - w, :K] + item.value
        better = candidate > dp + _TIE_EPS
        take[i] = better
        np.copyto(dp, candidate, where=better)

    # Best cell in the last row (capacity W, any count).
    best_k = int(np.argmax(dp[W]))
    chosen: list[int] = []
    m, k = W, best_k
    for i in range(n - 1, -1, -1):
        if take[i, m, k]:
            chosen.append(i)
            m -= weights[i]
            k -= 1
    return _result(items, chosen)


def knapsack_thread_capped(
    items: Sequence[Item],
    capacity: float,
    thread_capacity: int,
    quantum: float = DEFAULT_QUANTUM_MB,
    thread_quantum: int = 4,
) -> PackResult:
    """Memory x thread DP: packings exceeding the thread budget are
    infeasible (the literal reading of the paper's zero-value rule)."""
    _validate(capacity, quantum)
    if thread_capacity <= 0:
        raise ValueError("thread_capacity must be positive")
    if thread_quantum <= 0:
        raise ValueError("thread_quantum must be positive")
    n = len(items)
    W = int(capacity // quantum)
    T = thread_capacity // thread_quantum
    if n == 0:
        return _result(items, [])

    weights = [_quantize(item.weight, quantum) for item in items]
    threads = [
        int(math.ceil(item.threads / thread_quantum - 1e-12)) for item in items
    ]
    # All-zeros init gives "at most (m, t)" semantics: every cell is
    # reachable as the empty packing.
    dp = np.zeros((W + 1, T + 1))
    take = np.zeros((n, W + 1, T + 1), dtype=bool)
    for i, item in enumerate(items):
        w, t = weights[i], threads[i]
        if w > W or t > T:
            continue
        candidate = np.full((W + 1, T + 1), -np.inf)
        candidate[w:, t:] = (
            dp[: W + 1 - w, : T + 1 - t] + item.value
        )
        better = candidate > dp + _TIE_EPS
        take[i] = better
        np.copyto(dp, candidate, where=better)

    best_t = int(np.argmax(dp[W]))
    chosen: list[int] = []
    m, tt = W, best_t
    for i in range(n - 1, -1, -1):
        if take[i, m, tt]:
            chosen.append(i)
            m -= weights[i]
            tt -= threads[i]
    return _result(items, chosen)


def brute_force(
    items: Sequence[Item],
    capacity: float,
    max_items: Optional[int] = None,
    thread_capacity: Optional[int] = None,
) -> PackResult:
    """Exhaustive reference solver (exact weights, no quantization).

    Exponential — for tests on small instances only.
    """
    n = len(items)
    if n > 20:
        raise ValueError("brute_force is limited to 20 items")
    best: Optional[PackResult] = None
    for mask in range(1 << n):
        chosen = [i for i in range(n) if mask >> i & 1]
        weight = sum(items[i].weight for i in chosen)
        if weight > capacity:
            continue
        if max_items is not None and len(chosen) > max_items:
            continue
        threads = sum(items[i].threads for i in chosen)
        if thread_capacity is not None and threads > thread_capacity:
            continue
        value = sum(items[i].value for i in chosen)
        if best is None or value > best.total_value + _TIE_EPS:
            best = PackResult(tuple(chosen), value, weight, threads)
    assert best is not None  # the empty set is always feasible
    return best


def _validate(capacity: float, quantum: float) -> None:
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if quantum <= 0:
        raise ValueError("quantum must be positive")
