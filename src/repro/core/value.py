"""Job value functions for the knapsack formulation.

The paper sets each job's value so that it *decreases with its thread
count* (Eq. 1)::

    v_i = 1 - (t_i / 240)^2

so that maximizing knapsack value packs many low-thread jobs together —
the concurrency proxy. Alternative functions are provided for the
ablation study (experiment A1 in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable

#: Maps a job's declared thread count to its knapsack value.
ValueFunction = Callable[[int], float]


def paper_value(threads: int, thread_limit: int = 240) -> float:
    """Eq. 1 of the paper: quadratic penalty on threads."""
    if threads < 0:
        raise ValueError("threads must be non-negative")
    return 1.0 - (threads / thread_limit) ** 2


def paper_value_floored(
    threads: int, thread_limit: int = 240, floor: float = 0.05
) -> float:
    """Eq. 1 with a small positive floor.

    Eq. 1 assigns *zero* value to a full-card (240-thread) job, so the DP
    is indifferent to packing it at all — yet the paper's own Fig. 2 shows
    two such jobs sharing productively through their host gaps. The floor
    keeps every job worth packing while preserving Eq. 1's preference
    ordering. This is the default used by the MCCK scheduler.
    """
    return max(paper_value(threads, thread_limit), floor)


def linear_value(threads: int, thread_limit: int = 240) -> float:
    """Linear thread penalty: v = 1 - t/T (gentler than Eq. 1)."""
    if threads < 0:
        raise ValueError("threads must be non-negative")
    return max(1.0 - threads / thread_limit, 0.0)


def count_first_value(threads: int, thread_limit: int = 240) -> float:
    """Count-dominant value: v = 1 + Eq.1.

    Every job is worth at least 1, so maximizing total value maximizes
    the *number* of packed jobs first and uses Eq. 1 only to break ties —
    the most literal reading of "pack as many jobs as possible".
    """
    return 1.0 + paper_value(threads, thread_limit)


def constant_value(threads: int, thread_limit: int = 240) -> float:
    """Thread-blind value: pure job-count maximization."""
    if threads < 0:
        raise ValueError("threads must be non-negative")
    return 1.0


_REGISTRY: dict[str, ValueFunction] = {
    "paper": paper_value,
    "paper-floored": paper_value_floored,
    "linear": linear_value,
    "count-first": count_first_value,
    "constant": constant_value,
}


def get_value_function(name: str) -> ValueFunction:
    """Look a value function up by name (for CLI / experiment configs)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown value function {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


def value_function_names() -> list[str]:
    return sorted(_REGISTRY)
