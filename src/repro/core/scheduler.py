"""The sharing-aware cluster scheduler (the paper's contribution).

Implements the greedy loop of Fig. 4 on top of the Condor pool:

* at startup, model every coprocessor as a knapsack at full capacity and
  fill them one after another from the pending queue;
* whenever a device completes a job, create a new knapsack whose capacity
  is the memory that job freed (plus any other unreserved memory) and
  fill it from the remaining unscheduled jobs;
* apply each packing decision by rewriting job Requirements through
  ``condor_qedit`` in a batch, pinning chosen jobs to their node
  (``Name == "slot1@<node>"``) and parking everything else — the
  subsequent negotiation cycle then dispatches them (§IV-D1).

The scheduler never inspects job *profiles* (runtimes, offload shapes):
only the declared memory and thread numbers, exactly as the paper
prescribes ("we do not assume knowledge of job execution times").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from heapq import merge as _heapq_merge
from typing import Optional

from ..condor.ads import pin_requirements
from ..condor.pool import CondorPool
from ..condor.schedd import IDLE, JobRecord, job_tid
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..sim import profile as _profile
from .packer import DevicePacker, DevicePacking

#: Requirements expression that matches no machine (a parked job).
PARK_EXPRESSION = "false"


@dataclass
class PackingDecision:
    """One knapsack fill, recorded for analysis."""

    time: float
    node: str
    device: int
    free_mb_before: float
    packing: DevicePacking


class KnapsackClusterScheduler:
    """Greedy knapsack scheduling over a Condor pool (Fig. 4).

    Parameters
    ----------
    pool:
        The Condor pool to drive. Attach *before* ``pool.start()``.
    packer:
        The per-device knapsack packer (value function, quantum, optional
        hard thread cap).
    respect_host_slots:
        Bound each node's co-scheduled jobs by its free Condor slots
        (packing more than the slots could hold would only queue them at
        the node).
    """

    def __init__(
        self,
        pool: CondorPool,
        packer: Optional[DevicePacker] = None,
        respect_host_slots: bool = True,
    ) -> None:
        self.pool = pool
        self.env = pool.env
        self.schedd = pool.schedd
        self.packer = packer or DevicePacker()
        self.respect_host_slots = respect_host_slots

        self._capacity: dict[tuple[str, int], float] = {}
        self._committed: dict[tuple[str, int], float] = {}
        #: Devices currently failed/resetting: excluded from packing.
        self._offline: set[tuple[str, int]] = set()
        self._assignment: dict[str, tuple[str, int]] = {}
        self._node_slots: dict[str, int] = {}
        self._node_active: dict[str, int] = {}
        self.decisions: list[PackingDecision] = []
        self._attached = False
        # Incremental index of unassigned idle jobs (FIFO order), updated
        # on submit / assign / complete instead of rescanning the queue.
        self._pending_index: dict[str, JobRecord] = {}
        self._pending_ordered = True
        self._last_fifo_key: tuple[float, int] = (float("-inf"), 0)
        self._parked: set[str] = set()
        # Weight-bucketed view of the same index: bucket b holds jobs
        # whose declared memory lies in [2^(b-1), 2^b). A repack with F
        # MB free merges only buckets that can contain fitting jobs, so
        # its cost tracks the *fitting* queue, not the whole backlog.
        self._buckets: dict[int, dict[str, JobRecord]] = {}
        #: Pending-index traffic for the profiler's scheduler section.
        self.index_jobs_examined = 0
        self.index_jobs_skipped = 0
        # Same-timestep completions coalesce into one repack pass.
        self._dirty_devices: set[tuple[str, int]] = set()
        self._repack_scheduled = False
        #: Completion-triggered repack passes actually run.
        self.repack_passes = 0
        #: Completions absorbed into an already-scheduled pass.
        self.coalesced_completions = 0

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> None:
        """Take over placement: initial Fig.-4 pass + completion hooks."""
        if self._attached:
            raise RuntimeError("scheduler already attached")
        if self.schedd.running():
            raise RuntimeError("attach the scheduler before jobs start")
        self._attached = True
        for startd in self.pool.startds:
            snapshot = startd.snapshot()
            self._node_slots[snapshot.node] = snapshot.total_slots
            self._node_active[snapshot.node] = 0
            for device in snapshot.devices:
                key = (snapshot.node, device.index)
                self._capacity[key] = device.memory_mb
                self._committed[key] = 0.0
        self.schedd.completion_listeners.append(self._on_completion)
        self.schedd.submit_listeners.append(self._on_submit)
        self.schedd.failure_listeners.append(self._on_failure)
        self.schedd.requeue_listeners.append(self._on_requeue)
        self.schedd.recovery_listeners.append(self._on_recovery)
        for record in self.schedd.pending():
            self._index_add(record)
        self.schedule_pending()

    # -- the Fig. 4 loop -------------------------------------------------------

    def schedule_pending(self) -> int:
        """Pack every device with free capacity; park the rest.

        Returns the number of jobs newly assigned. Also the entry point
        for dynamic scenarios: call again after submitting more jobs.
        """
        assigned = 0
        for key in self._capacity:
            if key in self._offline:
                continue
            assigned += self._pack_device(*key)
        self._park_unassigned()
        return assigned

    # -- pending-job index -----------------------------------------------------

    @staticmethod
    def _bucket_key(declared_mb: float) -> int:
        # frexp puts declared in [2^(b-1), 2^b); 0 MB lands in bucket 0.
        return math.frexp(declared_mb)[1]

    def _index_add(self, record: JobRecord) -> None:
        key = (record.profile.submit_time, record.seq)
        if key < self._last_fifo_key:
            # Out-of-order submit time: fall back to a lazy re-sort.
            self._pending_ordered = False
        else:
            self._last_fifo_key = key
        self._pending_index[record.job_id] = record
        bucket = self._bucket_key(record.profile.declared_memory_mb)
        self._buckets.setdefault(bucket, {})[record.job_id] = record

    def _index_remove(self, job_id: str) -> Optional[JobRecord]:
        record = self._pending_index.pop(job_id, None)
        if record is not None:
            bucket = self._bucket_key(record.profile.declared_memory_mb)
            entries = self._buckets.get(bucket)
            if entries is not None:
                entries.pop(job_id, None)
                if not entries:
                    del self._buckets[bucket]
        self._parked.discard(job_id)
        return record

    def _on_submit(self, record: JobRecord) -> None:
        """Index — and immediately park — a post-attach arrival.

        Without the parking edit the job keeps its default Requirements
        until the next repack, and the vanilla negotiator is free to
        dispatch it to an arbitrary node, bypassing sharing-aware
        placement entirely.
        """
        self._index_add(record)
        self.schedd.qedit(record.job_id, "Requirements", PARK_EXPRESSION)
        self._parked.add(record.job_id)
        self._note_parked(record, reason="submit")

    def _note_parked(self, record: JobRecord, reason: str) -> None:
        """Observability for a parking edit (no-op when tracing is off)."""
        tracer = _trace.ACTIVE
        if tracer is not None:
            tracer.instant(
                "parked",
                "scheduler",
                self.env.now,
                tid=job_tid(record),
                reason=reason,
            )
        registry = _metrics.ACTIVE
        if registry is not None:
            registry.counter("scheduler.parks").inc()

    def _ensure_ordered(self) -> None:
        if self._pending_ordered:
            return
        ordered = sorted(
            self._pending_index.values(),
            key=lambda r: (r.profile.submit_time, r.seq),
        )
        self._pending_index = {r.job_id: r for r in ordered}
        self._buckets = {}
        for record in ordered:
            bucket = self._bucket_key(record.profile.declared_memory_mb)
            self._buckets.setdefault(bucket, {})[record.job_id] = record
        self._pending_ordered = True
        if ordered:
            last = ordered[-1]
            self._last_fifo_key = (last.profile.submit_time, last.seq)

    def _unassigned_pending(self) -> list[JobRecord]:
        """Unassigned idle jobs in FIFO order, from the incremental index.

        O(1) amortized maintenance per queue event; listing is linear in
        the *unassigned* count only (never the full job history). Entries
        that left the idle state outside our control are purged lazily.
        """
        self._ensure_ordered()
        stale = [
            job_id
            for job_id, record in self._pending_index.items()
            if record.status != IDLE
        ]
        for job_id in stale:
            self._index_remove(job_id)
        return list(self._pending_index.values())

    def _fitting_pending(self, free_mb: float) -> list[JobRecord]:
        """Unassigned idle jobs that fit ``free_mb``, in FIFO order.

        Merges only the weight buckets that can contain fitting jobs:
        buckets entirely below the free capacity stream through whole,
        the single boundary bucket is filtered per job, and heavier
        buckets are never touched. The (submit_time, seq) key is unique
        per record, so the bucket merge reproduces exactly the order a
        full FIFO walk filtered by weight would have produced.
        """
        self._ensure_ordered()
        boundary = self._bucket_key(free_mb)
        runs = []
        touched = 0
        for bucket, entries in self._buckets.items():
            if bucket > boundary:
                continue
            touched += len(entries)
            if bucket == boundary:
                run = [
                    r
                    for r in entries.values()
                    if r.profile.declared_memory_mb <= free_mb
                ]
            else:
                run = list(entries.values())
            if run:
                runs.append(run)
        self.index_jobs_examined += touched
        self.index_jobs_skipped += len(self._pending_index) - touched
        prof = _profile.ACTIVE
        if prof is not None:
            prof.index_jobs_examined += touched
            prof.index_jobs_skipped += len(self._pending_index) - touched
            if len(self._buckets) > prof.index_buckets_peak:
                prof.index_buckets_peak = len(self._buckets)
        if not runs:
            return []
        if len(runs) == 1:
            merged = runs[0]
        else:
            merged = list(
                _heapq_merge(
                    *runs, key=lambda r: (r.profile.submit_time, r.seq)
                )
            )
        stale = [r.job_id for r in merged if r.status != IDLE]
        if stale:
            for job_id in stale:
                self._index_remove(job_id)
            merged = [r for r in merged if r.status == IDLE]
        return merged

    def _pack_device(self, node: str, device: int) -> int:
        key = (node, device)
        if key in self._offline:
            return 0
        free_mb = self._capacity[key] - self._committed[key]
        if free_mb <= 0:
            return 0
        candidates = self._fitting_pending(free_mb)
        if not candidates:
            return 0
        max_jobs: Optional[int] = None
        if self.respect_host_slots:
            max_jobs = self._node_slots[node] - self._node_active[node]
            if max_jobs <= 0:
                return 0
        packing = self.packer.pack(
            [record.profile for record in candidates], free_mb, max_jobs
        )
        if not packing.chosen and self._committed[key] <= 0:
            # Progress guarantee: a value function may rate every
            # candidate at zero (Eq. 1 gives full-card jobs no value), but
            # an idle device with pending work must never starve — run the
            # FIFO-first job that fits, as plain Condor would.
            first = candidates[0]
            packing = DevicePacking(
                chosen=(first.job_id,),
                total_declared_mb=first.profile.declared_memory_mb,
                total_declared_threads=first.profile.declared_threads,
                total_value=0.0,
            )
        if packing.chosen:
            self.decisions.append(
                PackingDecision(
                    time=self.env.now,
                    node=node,
                    device=device,
                    free_mb_before=free_mb,
                    packing=packing,
                )
            )
            by_id = {record.job_id: record for record in candidates}
            edits = []
            tracer = _trace.ACTIVE
            for job_id in packing.chosen:
                record = by_id[job_id]
                self._assignment[job_id] = key
                self._committed[key] += record.profile.declared_memory_mb
                self._node_active[node] += 1
                self._index_remove(job_id)
                if tracer is not None:
                    tracer.instant(
                        "pinned",
                        "scheduler",
                        self.env.now,
                        tid=job_tid(record),
                        node=node,
                        device=device,
                    )
                # The shared helper keeps the qedit payload in the exact
                # shape the negotiator's pin analysis recognizes.
                edits.append((job_id, "Requirements", pin_requirements(node)))
                edits.append((job_id, "AssignedPhiDevice", str(device)))
            # The paper batches the rewritten requirements to the collector.
            self.schedd.qedit_batch(edits)
            if tracer is not None:
                # Packing happens in zero simulated time; the span exists
                # to put each knapsack fill on the scheduler track.
                tracer.set_thread_name(_trace.SCHEDULER_TID, "knapsack scheduler")
                tracer.complete(
                    "pack-device",
                    "scheduler",
                    self.env.now,
                    self.env.now,
                    tid=_trace.SCHEDULER_TID,
                    node=node,
                    device=device,
                    chosen=len(packing.chosen),
                    free_mb=free_mb,
                )
            registry = _metrics.ACTIVE
            if registry is not None:
                registry.counter("scheduler.packs").inc()
                registry.counter("scheduler.jobs_assigned").inc(
                    len(packing.chosen)
                )
        return len(packing.chosen)

    def _park_unassigned(self) -> None:
        edits = []
        for record in self._unassigned_pending():
            if record.job_id in self._parked:
                continue  # parked at submission; nothing to re-evaluate
            if record.ad.evaluate("Requirements") is not False:
                edits.append((record.job_id, "Requirements", PARK_EXPRESSION))
            self._parked.add(record.job_id)
            self._note_parked(record, reason="unassigned")
        if edits:
            self.schedd.qedit_batch(edits)

    def _on_completion(self, record: JobRecord) -> None:
        key = self._assignment.pop(record.job_id, None)
        if key is None:
            # Not ours (e.g., dispatched before attach); drop any index
            # remnants so the job cannot be offered to the packer again.
            self._index_remove(record.job_id)
            return
        node, device = key
        self._committed[key] = max(
            0.0, self._committed[key] - record.profile.declared_memory_mb
        )
        self._node_active[node] -= 1
        # Fig. 4: "create knapsack: capacity = free memory in D" — but
        # coalesced: N completions landing on the same timestep mark their
        # devices dirty and trigger ONE zero-delay repack pass, not N
        # full knapsack fills.
        self._dirty_devices.add(key)
        self._schedule_repack()

    def _schedule_repack(self) -> None:
        """Coalesce same-timestep dirty devices into one zero-delay pass."""
        if self.schedd.down:
            # Nothing to pack against a crashed schedd; the recovery
            # resync marks every online device dirty and reschedules.
            return
        if self._repack_scheduled:
            self.coalesced_completions += 1
            return
        self._repack_scheduled = True
        trigger = self.env.event()
        trigger.callbacks.append(self._coalesced_repack)
        trigger.succeed()

    def _coalesced_repack(self, _event) -> None:
        self._repack_scheduled = False
        if self.schedd.down:
            # Crash landed between scheduling and firing: drop the pass
            # (the dirty set is rebuilt wholesale by the recovery resync).
            self._dirty_devices.clear()
            return
        dirty = sorted(self._dirty_devices)
        self._dirty_devices.clear()
        self.repack_passes += 1
        prof = _profile.ACTIVE
        if prof is not None:
            prof.repack_passes += 1
            prof.devices_repacked += len(dirty)
        for node, device in dirty:
            if (node, device) in self._offline:
                continue
            self._pack_device(node, device)

    # -- failure handling --------------------------------------------------------

    def _mark_all_online_dirty(self) -> None:
        for key in self._capacity:
            if key not in self._offline:
                self._dirty_devices.add(key)

    def on_device_failed(self, node: str, device: int) -> None:
        """A coprocessor went down: withdraw it and re-pack its queue.

        Jobs already *running* there fail through the interrupt path and
        come back via :meth:`_on_failure`; jobs merely *pinned* there
        (assigned but still idle in the queue) are displaced here: their
        commitment is withdrawn, they re-enter the pending index, and the
        pin is replaced with a parking expression until the next pack
        assigns them a live card.
        """
        key = (node, device)
        if key not in self._capacity:
            return
        if key in self._offline:
            return
        self._offline.add(key)
        self._dirty_devices.discard(key)
        if self.schedd.down:
            # The schedd is mid-crash: no qedit can land and the queue is
            # about to be replayed anyway. Take the card offline now; the
            # post-recovery resync displaces whatever was pinned to it.
            return
        displaced = [
            job_id for job_id, assigned in self._assignment.items()
            if assigned == key
        ]
        edits = []
        for job_id in displaced:
            record = self.schedd.get(job_id)
            if record.status != IDLE:
                continue  # running/backoff: the failure path handles it
            del self._assignment[job_id]
            self._committed[key] = max(
                0.0, self._committed[key] - record.profile.declared_memory_mb
            )
            self._node_active[node] -= 1
            self._index_add(record)
            self._parked.add(job_id)
            self._note_parked(record, reason="device-failed")
            edits.append((job_id, "Requirements", PARK_EXPRESSION))
        if edits:
            self.schedd.qedit_batch(edits)
        # Displaced (and soon requeued) jobs need somewhere to go.
        self._mark_all_online_dirty()
        self._schedule_repack()

    def on_device_restored(self, node: str, device: int) -> None:
        """A reset/rebooted card is back: resume packing onto it."""
        key = (node, device)
        if key not in self._offline:
            return  # idempotent: reset + node reboot may both report it
        self._offline.discard(key)
        self._dirty_devices.add(key)
        self._schedule_repack()

    def _on_failure(self, record: JobRecord, _result, _requeued: bool) -> None:
        """Failed run: release the device commitment immediately.

        The job itself re-enters the queue through :meth:`_on_requeue`
        after its backoff (or never, if the failure was terminal); either
        way the memory it held must be packable right now.
        """
        key = self._assignment.pop(record.job_id, None)
        if key is None:
            self._index_remove(record.job_id)
            return
        node, _device = key
        self._committed[key] = max(
            0.0, self._committed[key] - record.profile.declared_memory_mb
        )
        self._node_active[node] -= 1
        if key not in self._offline:
            self._dirty_devices.add(key)
            self._schedule_repack()

    def _on_recovery(self) -> None:
        """Full resync after a schedd crash–replay.

        The replayed queue holds *new* ``JobRecord`` objects, so every
        record reference cached in the pending index is stale. Rebuild
        the index from scratch, then reconcile the assignment table
        against the replayed queue: pins onto live cards are re-asserted
        (the replay restored the journaled Requirements, but re-issuing
        them keeps the resync correct even if the crash landed mid
        qedit batch), pins onto cards that died while the schedd was
        down are displaced, and everything else is parked for the next
        pack. Memory commitments for matched/running jobs are untouched
        — their claims were re-adopted, not re-planned.
        """
        self._pending_index = {}
        self._buckets = {}
        self._parked = set()
        self._pending_ordered = True
        self._last_fifo_key = (float("-inf"), 0)
        self._dirty_devices.clear()
        edits = []
        for record in self.schedd.pending():
            key = self._assignment.get(record.job_id)
            if key is not None and key not in self._offline:
                node, device = key
                edits.append(
                    (record.job_id, "Requirements", pin_requirements(node))
                )
                edits.append((record.job_id, "AssignedPhiDevice", str(device)))
                continue
            if key is not None:
                # Pinned to a card that went down during the outage.
                node, _device = key
                del self._assignment[record.job_id]
                self._committed[key] = max(
                    0.0,
                    self._committed[key] - record.profile.declared_memory_mb,
                )
                self._node_active[node] -= 1
            self._index_add(record)
            self._parked.add(record.job_id)
            if record.ad.evaluate("Requirements") is not False:
                edits.append((record.job_id, "Requirements", PARK_EXPRESSION))
            self._note_parked(record, reason="recovery")
        if edits:
            self.schedd.qedit_batch(edits)
        self._mark_all_online_dirty()
        self._schedule_repack()

    def _on_requeue(self, record: JobRecord) -> None:
        """Backoff elapsed: park the retry and offer it to the packer."""
        self._index_add(record)
        self.schedd.qedit(record.job_id, "Requirements", PARK_EXPRESSION)
        self._parked.add(record.job_id)
        self._note_parked(record, reason="requeue")
        self._mark_all_online_dirty()
        self._schedule_repack()

    def start_periodic(self, interval: float):
        """Also re-pack on a timer (for dynamic-arrival scenarios).

        Completions already trigger repacking; a periodic pass
        additionally picks up jobs submitted since the last event. Call
        after :meth:`attach`; returns the created process.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self._attached:
            raise RuntimeError("attach the scheduler first")

        def _loop():
            while True:
                yield self.env.timeout(interval)
                self.schedule_pending()

        return self.env.process(_loop(), name="knapsack-periodic")

    # -- inspection ------------------------------------------------------------

    def committed_mb(self, node: str, device: int = 0) -> float:
        return self._committed[(node, device)]

    def assignment_of(self, job_id: str) -> Optional[tuple[str, int]]:
        return self._assignment.get(job_id)

    @property
    def assigned_jobs(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:
        return (
            f"<KnapsackClusterScheduler devices={len(self._capacity)} "
            f"assigned={self.assigned_jobs} decisions={len(self.decisions)}>"
        )
