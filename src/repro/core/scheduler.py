"""The sharing-aware cluster scheduler (the paper's contribution).

Implements the greedy loop of Fig. 4 on top of the Condor pool:

* at startup, model every coprocessor as a knapsack at full capacity and
  fill them one after another from the pending queue;
* whenever a device completes a job, create a new knapsack whose capacity
  is the memory that job freed (plus any other unreserved memory) and
  fill it from the remaining unscheduled jobs;
* apply each packing decision by rewriting job Requirements through
  ``condor_qedit`` in a batch, pinning chosen jobs to their node
  (``Name == "slot1@<node>"``) and parking everything else — the
  subsequent negotiation cycle then dispatches them (§IV-D1).

The scheduler never inspects job *profiles* (runtimes, offload shapes):
only the declared memory and thread numbers, exactly as the paper
prescribes ("we do not assume knowledge of job execution times").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..condor.pool import CondorPool
from ..condor.schedd import IDLE, JobRecord
from .packer import DevicePacker, DevicePacking

#: Requirements expression that matches no machine (a parked job).
PARK_EXPRESSION = "false"


@dataclass
class PackingDecision:
    """One knapsack fill, recorded for analysis."""

    time: float
    node: str
    device: int
    free_mb_before: float
    packing: DevicePacking


class KnapsackClusterScheduler:
    """Greedy knapsack scheduling over a Condor pool (Fig. 4).

    Parameters
    ----------
    pool:
        The Condor pool to drive. Attach *before* ``pool.start()``.
    packer:
        The per-device knapsack packer (value function, quantum, optional
        hard thread cap).
    respect_host_slots:
        Bound each node's co-scheduled jobs by its free Condor slots
        (packing more than the slots could hold would only queue them at
        the node).
    """

    def __init__(
        self,
        pool: CondorPool,
        packer: Optional[DevicePacker] = None,
        respect_host_slots: bool = True,
    ) -> None:
        self.pool = pool
        self.env = pool.env
        self.schedd = pool.schedd
        self.packer = packer or DevicePacker()
        self.respect_host_slots = respect_host_slots

        self._capacity: dict[tuple[str, int], float] = {}
        self._committed: dict[tuple[str, int], float] = {}
        self._assignment: dict[str, tuple[str, int]] = {}
        self._node_slots: dict[str, int] = {}
        self._node_active: dict[str, int] = {}
        self.decisions: list[PackingDecision] = []
        self._attached = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> None:
        """Take over placement: initial Fig.-4 pass + completion hooks."""
        if self._attached:
            raise RuntimeError("scheduler already attached")
        if self.schedd.running():
            raise RuntimeError("attach the scheduler before jobs start")
        self._attached = True
        for startd in self.pool.startds:
            snapshot = startd.snapshot()
            self._node_slots[snapshot.node] = snapshot.total_slots
            self._node_active[snapshot.node] = 0
            for device in snapshot.devices:
                key = (snapshot.node, device.index)
                self._capacity[key] = device.memory_mb
                self._committed[key] = 0.0
        self.schedd.completion_listeners.append(self._on_completion)
        self.schedule_pending()

    # -- the Fig. 4 loop -------------------------------------------------------

    def schedule_pending(self) -> int:
        """Pack every device with free capacity; park the rest.

        Returns the number of jobs newly assigned. Also the entry point
        for dynamic scenarios: call again after submitting more jobs.
        """
        assigned = 0
        for key in self._capacity:
            assigned += self._pack_device(*key)
        self._park_unassigned()
        return assigned

    def _unassigned_pending(self) -> list[JobRecord]:
        return [
            record
            for record in self.schedd.pending()
            if record.job_id not in self._assignment
        ]

    def _pack_device(self, node: str, device: int) -> int:
        key = (node, device)
        free_mb = self._capacity[key] - self._committed[key]
        if free_mb <= 0:
            return 0
        candidates = [
            record
            for record in self._unassigned_pending()
            if record.profile.declared_memory_mb <= free_mb
        ]
        if not candidates:
            return 0
        max_jobs: Optional[int] = None
        if self.respect_host_slots:
            max_jobs = self._node_slots[node] - self._node_active[node]
            if max_jobs <= 0:
                return 0
        packing = self.packer.pack(
            [record.profile for record in candidates], free_mb, max_jobs
        )
        if not packing.chosen and self._committed[key] <= 0:
            # Progress guarantee: a value function may rate every
            # candidate at zero (Eq. 1 gives full-card jobs no value), but
            # an idle device with pending work must never starve — run the
            # FIFO-first job that fits, as plain Condor would.
            first = candidates[0]
            packing = DevicePacking(
                chosen=(first.job_id,),
                total_declared_mb=first.profile.declared_memory_mb,
                total_declared_threads=first.profile.declared_threads,
                total_value=0.0,
            )
        if packing.chosen:
            self.decisions.append(
                PackingDecision(
                    time=self.env.now,
                    node=node,
                    device=device,
                    free_mb_before=free_mb,
                    packing=packing,
                )
            )
            by_id = {record.job_id: record for record in candidates}
            edits = []
            for job_id in packing.chosen:
                record = by_id[job_id]
                self._assignment[job_id] = key
                self._committed[key] += record.profile.declared_memory_mb
                self._node_active[node] += 1
                edits.append(
                    (
                        job_id,
                        "Requirements",
                        f'TARGET.Name == "slot1@{node}" && TARGET.FreeSlots >= 1',
                    )
                )
                edits.append((job_id, "AssignedPhiDevice", str(device)))
            # The paper batches the rewritten requirements to the collector.
            self.schedd.qedit_batch(edits)
        return len(packing.chosen)

    def _park_unassigned(self) -> None:
        edits = [
            (record.job_id, "Requirements", PARK_EXPRESSION)
            for record in self._unassigned_pending()
            if record.ad.evaluate("Requirements") is not False
        ]
        if edits:
            self.schedd.qedit_batch(edits)

    def _on_completion(self, record: JobRecord) -> None:
        key = self._assignment.pop(record.job_id, None)
        if key is None:
            return  # not ours (e.g., dispatched before attach)
        node, device = key
        self._committed[key] = max(
            0.0, self._committed[key] - record.profile.declared_memory_mb
        )
        self._node_active[node] -= 1
        # Fig. 4: "create knapsack: capacity = free memory in D".
        self._pack_device(node, device)

    def start_periodic(self, interval: float):
        """Also re-pack on a timer (for dynamic-arrival scenarios).

        Completions already trigger repacking; a periodic pass
        additionally picks up jobs submitted since the last event. Call
        after :meth:`attach`; returns the created process.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self._attached:
            raise RuntimeError("attach the scheduler first")

        def _loop():
            while True:
                yield self.env.timeout(interval)
                self.schedule_pending()

        return self.env.process(_loop(), name="knapsack-periodic")

    # -- inspection ------------------------------------------------------------

    def committed_mb(self, node: str, device: int = 0) -> float:
        return self._committed[(node, device)]

    def assignment_of(self, job_id: str) -> Optional[tuple[str, int]]:
        return self._assignment.get(job_id)

    @property
    def assigned_jobs(self) -> int:
        return len(self._assignment)

    def __repr__(self) -> str:
        return (
            f"<KnapsackClusterScheduler devices={len(self._capacity)} "
            f"assigned={self.assigned_jobs} decisions={len(self.decisions)}>"
        )
