"""The paper's contribution: knapsack-based sharing-aware cluster scheduling."""

from .estimator import ResourceEstimate, ResourceEstimator
from .knapsack import (
    DEFAULT_QUANTUM_MB,
    Item,
    PackResult,
    brute_force,
    knapsack_1d,
    knapsack_cardinality,
    knapsack_thread_capped,
)
from .packer import DevicePacker, DevicePacking, PackableJob
from .scheduler import KnapsackClusterScheduler, PackingDecision, PARK_EXPRESSION
from .value import (
    ValueFunction,
    constant_value,
    count_first_value,
    get_value_function,
    linear_value,
    paper_value,
    paper_value_floored,
    value_function_names,
)

__all__ = [
    "DEFAULT_QUANTUM_MB",
    "DevicePacker",
    "DevicePacking",
    "Item",
    "KnapsackClusterScheduler",
    "PARK_EXPRESSION",
    "PackResult",
    "PackableJob",
    "PackingDecision",
    "ResourceEstimate",
    "ResourceEstimator",
    "ValueFunction",
    "brute_force",
    "constant_value",
    "count_first_value",
    "get_value_function",
    "knapsack_1d",
    "knapsack_cardinality",
    "knapsack_thread_capped",
    "linear_value",
    "paper_value",
    "paper_value_floored",
    "value_function_names",
]
