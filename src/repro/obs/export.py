"""Exporters for the observability layer.

Two output shapes:

* :func:`chrome_trace` — the Chrome ``trace_event`` JSON format (the
  "JSON Array/Object Format"), loadable in ``chrome://tracing`` or
  https://ui.perfetto.dev. Each simulation cell becomes a trace
  *process*; the negotiator, the knapsack scheduler, the fault injector
  and every job get their own named *track*; spans are complete (``X``)
  events and point events are instants (``i``).
* :func:`render_summary` — a plain-text run summary of span counts,
  counters, gauge time-averages and histogram percentiles, suitable for
  a terminal or a CI log.

Export is deterministic: events are ordered chronologically per cell
(ties broken by emission order, which the event kernel fixes for a given
seed), timestamps are simulated microseconds, and the JSON is serialized
with sorted keys and no whitespace — two runs with the same seed produce
byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any

from .metrics import MetricsRegistry
from .trace import Tracer

#: Simulated seconds -> trace microseconds (Chrome's native unit).
_US = 1e6


def _span_events(tracer: Tracer) -> list[dict[str, Any]]:
    cell_end = {cell.pid: cell.last_time for cell in tracer.cells}
    events = []
    for span in tracer.spans:
        end = span.end if span.end is not None else cell_end[span.pid]
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start * _US,
            "dur": (end - span.start) * _US,
            "pid": span.pid,
            "tid": span.tid,
        }
        args = dict(span.args)
        if span.end is None:
            args["unfinished"] = True
        if args:
            event["args"] = args
        events.append((span.pid, span.start * _US, span.seq, event))
    for inst in tracer.instants:
        event = {
            "name": inst.name,
            "cat": inst.cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": inst.time * _US,
            "pid": inst.pid,
            "tid": inst.tid,
        }
        if inst.args:
            event["args"] = inst.args
        events.append((inst.pid, inst.time * _US, inst.seq, event))
    events.sort(key=lambda item: item[:3])
    return [event for *_key, event in events]


def _metadata_events(tracer: Tracer) -> list[dict[str, Any]]:
    events = []
    for cell in tracer.cells:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": cell.pid,
                "tid": 0,
                "args": {"name": cell.label},
            }
        )
        for tid in sorted(cell.thread_names):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": cell.pid,
                    "tid": tid,
                    "args": {"name": cell.thread_names[tid]},
                }
            )
    return events


def chrome_trace(tracer: Tracer) -> str:
    """Serialize a tracer to Chrome ``trace_event`` JSON."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": _metadata_events(tracer) + _span_events(tracer),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# -- plain-text summary ------------------------------------------------------


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  " + "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  " + " | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return lines


def _trace_summary(tracer: Tracer) -> list[str]:
    lines = [
        f"trace: {len(tracer.spans)} spans, {len(tracer.instants)} instants, "
        f"{len(tracer.cells)} cell(s)"
    ]
    totals: dict[str, tuple[int, float]] = {}
    cell_end = {cell.pid: cell.last_time for cell in tracer.cells}
    for span in tracer.spans:
        end = span.end if span.end is not None else cell_end[span.pid]
        count, duration = totals.get(span.name, (0, 0.0))
        totals[span.name] = (count + 1, duration + (end - span.start))
    rows = [
        [name, f"{count}", f"{duration:.1f}"]
        for name, (count, duration) in sorted(totals.items())
    ]
    if rows:
        lines.extend(_table(["span", "count", "sim s (total)"], rows))
    return lines


def _series_stats(series) -> tuple[float, float]:
    """(last value, exact time-average) of a StepSeries."""
    if not len(series):
        return 0.0, 0.0
    last = series.values[-1]
    start, end = series.times[0], series.times[-1]
    if end > start:
        return last, series.mean(start, end)
    return last, last


def _metrics_summary(registry: MetricsRegistry) -> list[str]:
    lines: list[str] = []
    for cell in registry.cells:
        lines.append(f"cell {cell.label}")
        if cell.counters:
            rows = [
                [name, f"{cell.counters[name].value}"]
                for name in sorted(cell.counters)
            ]
            lines.extend(_table(["counter", "value"], rows))
        gauges = {**cell.gauges, **cell.adopted}
        if gauges:
            rows = []
            for name in sorted(gauges):
                last, mean = _series_stats(gauges[name])
                rows.append(
                    [name, f"{len(gauges[name])}", f"{last:g}", f"{mean:.2f}"]
                )
            lines.extend(_table(["gauge", "steps", "last", "time-mean"], rows))
        if cell.histograms:
            rows = []
            for name in sorted(cell.histograms):
                hist = cell.histograms[name]
                obs = hist.observations
                if obs:
                    mean = sum(obs) / len(obs)
                    row = [
                        name,
                        f"{len(obs)}",
                        f"{min(obs):.3g}",
                        f"{mean:.3g}",
                        f"{hist.percentile(0.5):.3g}",
                        f"{hist.percentile(0.95):.3g}",
                        f"{max(obs):.3g}",
                    ]
                else:
                    row = [name, "0", "-", "-", "-", "-", "-"]
                rows.append(row)
            lines.extend(
                _table(
                    ["histogram", "count", "min", "mean", "p50", "p95", "max"],
                    rows,
                )
            )
        lines.append("")
    return lines


def render_summary(
    tracer: Tracer = None, registry: MetricsRegistry = None
) -> str:
    """Plain-text run summary of whichever subsystems were active."""
    lines: list[str] = ["observability summary " + "-" * 38]
    if tracer is not None:
        lines.extend(_trace_summary(tracer))
        lines.append("")
    if registry is not None:
        lines.extend(_metrics_summary(registry))
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
