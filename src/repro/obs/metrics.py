"""Metrics registry: counters, gauges, and histograms per simulation cell.

The registry complements the tracer: where spans attribute *one job's*
latency, metrics aggregate across the run — queue depth over time,
device memory and thread occupancy, matches per negotiation cycle,
retry counts. Gauges are sampled into
:class:`~repro.phi.telemetry.StepSeries` on the simulation clock, so the
summary reports exact time-averages (not poll-rate-dependent samples);
the registry can also *adopt* the step series the device telemetry layer
already maintains, which costs nothing extra during the run.

Activation mirrors :mod:`repro.obs.trace`: a module-global
:data:`ACTIVE`, a single ``is not None`` guard per emission site, zero
overhead and byte-identical output when off.

Wall-clock durations (the negotiation-cycle duration histogram) are the
one deliberate exception to sim-time purity: they measure *host* cost,
as production schedulers do. They live only in metrics — never in the
trace — so trace export stays byte-deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: The registry emission sites report to (``None`` = metrics off).
ACTIVE: Optional["MetricsRegistry"] = None


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Histogram:
    """A list of observations, summarized at export time."""

    __slots__ = ("observations",)

    def __init__(self) -> None:
        self.observations: list[float] = []

    def observe(self, value: float) -> None:
        self.observations.append(value)

    @property
    def count(self) -> int:
        return len(self.observations)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (0 when empty)."""
        if not self.observations:
            return 0.0
        ordered = sorted(self.observations)
        rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[rank]


@dataclass
class CellMetrics:
    """All metrics recorded during one simulation cell."""

    label: str
    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)  # name -> StepSeries
    histograms: dict[str, Histogram] = field(default_factory=dict)
    #: Step series owned by another subsystem (device telemetry),
    #: referenced here so the summary can report them without
    #: re-recording a single sample.
    adopted: dict = field(default_factory=dict)  # name -> StepSeries


class MetricsRegistry:
    """Name-addressed metrics, partitioned per simulation cell."""

    def __init__(self) -> None:
        self.cells: list[CellMetrics] = [CellMetrics(label="run")]

    @property
    def cell(self) -> CellMetrics:
        return self.cells[-1]

    def enter_cell(self, label: str) -> None:
        """Start a fresh metrics namespace for the next simulation cell.

        Each cell's simulation clock restarts at zero, so gauges must
        not be shared across cells (a :class:`StepSeries` rejects
        time going backwards).
        """
        current = self.cells[-1]
        if (
            current.label == "run"
            and not current.counters
            and not current.gauges
            and not current.histograms
            and not current.adopted
        ):
            current.label = label
            return
        self.cells.append(CellMetrics(label=label))

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        cell = self.cells[-1]
        counter = cell.counters.get(name)
        if counter is None:
            counter = cell.counters[name] = Counter()
        return counter

    def gauge(self, name: str):
        """A :class:`StepSeries` gauge; record with ``(sim_time, value)``."""
        cell = self.cells[-1]
        series = cell.gauges.get(name)
        if series is None:
            # Imported lazily: phi.telemetry must stay importable from
            # layers that also import this module (no import cycle).
            from ..phi.telemetry import StepSeries

            series = cell.gauges[name] = StepSeries()
        return series

    def histogram(self, name: str) -> Histogram:
        cell = self.cells[-1]
        histogram = cell.histograms.get(name)
        if histogram is None:
            histogram = cell.histograms[name] = Histogram()
        return histogram

    def adopt_series(self, name: str, series) -> None:
        """Expose an externally-owned StepSeries in the summary."""
        self.cells[-1].adopted[name] = series

    def __repr__(self) -> str:
        cell = self.cells[-1]
        return (
            f"<MetricsRegistry cells={len(self.cells)} "
            f"counters={len(cell.counters)} gauges={len(cell.gauges)} "
            f"histograms={len(cell.histograms)}>"
        )


def activate() -> MetricsRegistry:
    """Install a fresh registry; emission sites pick it up immediately."""
    global ACTIVE
    ACTIVE = MetricsRegistry()
    return ACTIVE


def deactivate() -> Optional[MetricsRegistry]:
    """Uninstall the active registry and return it (``None`` if none)."""
    global ACTIVE
    registry, ACTIVE = ACTIVE, None
    return registry
