"""``repro.obs`` — structured tracing and metrics for the simulator.

A zero-overhead-when-off observability layer on the simulation clock:

* :mod:`repro.obs.trace` — lifecycle spans (submit → queued/parked →
  matched → dispatch → offload admission/execution → completion, kill
  or retry), emitted by the Condor, COSMIC, MPSS, Phi and fault layers;
* :mod:`repro.obs.metrics` — counters / gauges / histograms (queue
  depth, device occupancy, negotiation cycles, retries) sampled into
  :class:`~repro.phi.telemetry.StepSeries`;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto) and a plain-text run summary.

The CLI wires this up as ``--trace PATH`` / ``--metrics PATH`` (see
``repro.experiments``); programmatic use mirrors the kernel profiler::

    from repro.obs import trace

    tracer = trace.activate()    # simulations built afterwards emit spans
    try:
        ... run simulation ...
    finally:
        trace.deactivate()
    open("trace.json", "w").write(chrome_trace(tracer))
"""

from .export import chrome_trace, render_summary
from .metrics import Counter, Histogram, MetricsRegistry
from .trace import (
    FAULTS_TID,
    JOB_TID_BASE,
    NEGOTIATOR_TID,
    SCHEDULER_TID,
    Instant,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "FAULTS_TID",
    "Histogram",
    "Instant",
    "JOB_TID_BASE",
    "MetricsRegistry",
    "NEGOTIATOR_TID",
    "SCHEDULER_TID",
    "Span",
    "Tracer",
    "chrome_trace",
    "render_summary",
]
