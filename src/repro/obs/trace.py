"""Span-based tracing on the simulation clock.

The tracer records the full job lifecycle — submit → queued (idle or
parked) → matched → dispatch → execution, with each offload's admission
wait and device execution nested inside — as *spans* (intervals of
simulated time) and *instants* (point events), exactly the accounting
HTCondor's job event log and COSMIC's per-offload instrumentation keep
in the real systems this repo reproduces.

Design rules, in order of importance:

1. **Zero overhead when off.** Like the kernel profiler
   (:mod:`repro.sim.profile`), activation is a module global
   (:data:`ACTIVE`); every emission site is guarded by a single
   ``is not None`` check and a disabled run executes no tracing code at
   all, so disabled-mode output stays byte-identical to a build without
   the subsystem.
2. **Deterministic.** Spans carry *simulated* time only — never wall
   clock — and get sequence numbers in emission order, which the event
   kernel already makes deterministic for a fixed seed. Two runs with
   the same seed therefore export byte-identical traces.
3. **Structured.** Spans form a forest: each has an optional parent and
   must nest within it (``parent.start <= start`` and
   ``end <= parent.end``, property-tested). Chrome's ``trace_event``
   viewer renders the nesting as flame-graph stacks per job track.

Emitters that begin a span in one function and end it in another (the
schedd begins a job's ``queued`` span at submission; the negotiator's
match ends it) use the *keyed* helpers, which store open spans in a
registry under a caller-chosen key — no plumbing of span handles through
layers that otherwise do not know about each other.

This module deliberately imports nothing from the rest of the package so
every layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Optional

#: The tracer emission sites report to (``None`` = tracing off).
ACTIVE: Optional["Tracer"] = None

#: Reserved track (thread) ids within each cell's trace process.
NEGOTIATOR_TID = 1
SCHEDULER_TID = 2
FAULTS_TID = 3
NET_TID = 4
#: Job tracks start here; a job's track is ``JOB_TID_BASE + seq``.
JOB_TID_BASE = 10


@dataclass
class Span:
    """One interval of simulated time on one track."""

    name: str
    cat: str
    start: float
    pid: int
    tid: int
    seq: int
    parent: Optional["Span"] = None
    end: Optional[float] = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None


@dataclass
class Instant:
    """One point event on one track."""

    name: str
    cat: str
    time: float
    pid: int
    tid: int
    seq: int
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class CellTrack:
    """One simulation cell = one trace process (Chrome ``pid``)."""

    pid: int
    label: str
    #: Latest simulated time seen in this cell; exporters close any
    #: still-open span here (e.g. jobs parked when the cell ended).
    last_time: float = 0.0
    #: Track names, announced lazily by emitters: tid -> display name.
    thread_names: dict[int, str] = field(default_factory=dict)


class Tracer:
    """Collects spans and instants for one (or more) simulation cells.

    A cell is one simulation run (its clock starts at 0); the experiment
    runner calls :meth:`enter_cell` before each cell so multi-cell runs
    (``fig8 --trace`` executes every distribution x configuration cell)
    export as separate trace processes instead of overlapping tracks.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self.cells: list[CellTrack] = [CellTrack(pid=1, label="run")]
        self._seq = 0
        self._open: dict[Hashable, Span] = {}

    # -- cells -------------------------------------------------------------

    @property
    def cell(self) -> CellTrack:
        return self.cells[-1]

    def enter_cell(self, label: str) -> None:
        """Start a new trace process; open spans of the old cell close."""
        previous = self.cells[-1]
        self._open.clear()
        if not self.spans and not self.instants and previous.label == "run":
            # The implicit first cell was never used: rename it.
            previous.label = label
            return
        self.cells.append(CellTrack(pid=previous.pid + 1, label=label))

    def set_thread_name(self, tid: int, name: str) -> None:
        """Name a track in the current cell (first writer wins)."""
        self.cell.thread_names.setdefault(tid, name)

    # -- emission ----------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _touch(self, time: float) -> None:
        cell = self.cells[-1]
        if time > cell.last_time:
            cell.last_time = time

    def begin(
        self,
        name: str,
        cat: str,
        time: float,
        tid: int = 0,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Open a span at simulated ``time``."""
        span = Span(
            name=name,
            cat=cat,
            start=time,
            pid=self.cells[-1].pid,
            tid=tid,
            seq=self._next_seq(),
            parent=parent,
            args=args,
        )
        self.spans.append(span)
        self._touch(time)
        return span

    def end(self, span: Span, time: float, **args: Any) -> Span:
        """Close ``span`` at simulated ``time``."""
        if span.end is not None:
            raise ValueError(f"span {span.name!r} already ended")
        if time < span.start:
            raise ValueError(
                f"span {span.name!r} cannot end at {time} before its "
                f"start {span.start}"
            )
        span.end = time
        if args:
            span.args.update(args)
        self._touch(time)
        return span

    def complete(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        tid: int = 0,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Record an already-finished span (e.g. a negotiation cycle)."""
        span = self.begin(name, cat, start, tid=tid, parent=parent, **args)
        return self.end(span, end)

    def instant(
        self, name: str, cat: str, time: float, tid: int = 0, **args: Any
    ) -> Instant:
        """Record a point event (completion, kill, fault injection...)."""
        event = Instant(
            name=name,
            cat=cat,
            time=time,
            pid=self.cells[-1].pid,
            tid=tid,
            seq=self._next_seq(),
            args=args,
        )
        self.instants.append(event)
        self._touch(time)
        return event

    # -- keyed spans (begin and end live in different layers) ---------------

    def begin_keyed(
        self,
        key: Hashable,
        name: str,
        cat: str,
        time: float,
        tid: int = 0,
        parent: Optional[Span] = None,
        **args: Any,
    ) -> Span:
        """Open a span registered under ``key`` (replacing a stale one)."""
        span = self.begin(name, cat, time, tid=tid, parent=parent, **args)
        self._open[key] = span
        return span

    def get(self, key: Hashable) -> Optional[Span]:
        """The open span registered under ``key``, if any."""
        return self._open.get(key)

    def end_keyed(self, key: Hashable, time: float, **args: Any) -> Optional[Span]:
        """Close and deregister the span under ``key``; None if absent.

        A no-op when no span is open under the key, so teardown paths
        (interrupt handling, ``finally`` blocks) can end unconditionally.
        """
        span = self._open.pop(key, None)
        if span is None:
            return None
        return self.end(span, time, **args)

    # -- derived -----------------------------------------------------------

    def span_counts(self) -> dict[str, int]:
        """Span count per name (summary + smoke-test assertions)."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"<Tracer cells={len(self.cells)} spans={len(self.spans)} "
            f"instants={len(self.instants)}>"
        )


def activate() -> Tracer:
    """Install a fresh tracer; emission sites pick it up immediately."""
    global ACTIVE
    ACTIVE = Tracer()
    return ACTIVE


def deactivate() -> Optional[Tracer]:
    """Uninstall the active tracer and return it (``None`` if none)."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer
