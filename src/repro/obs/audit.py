"""Runtime invariant auditor: cheap ledgers, loud violations.

Message loss makes state bugs easy to hide — a duplicated claim or a
lost release corrupts slot accounting silently and only shows up as a
hung queue much later. The auditor watches the invariants that must hold
regardless of network weather:

* every submitted job reaches **exactly one** terminal outcome;
* no slot population exceeds the node's slot count, and no job holds
  two claims at once;
* no job runs on two nodes simultaneously;
* device memory accounting never goes negative (no over-free);
* lease and claim ledgers reconcile (every open has a close) by the
  end of the cell.

Zero-cost-when-disabled, same pattern as :mod:`repro.sim.profile` and
:mod:`repro.obs.trace`: emission sites across the condor/phi layers pay
one ``ACTIVE is not None`` check when auditing is off. A violation
raises :class:`AuditViolation` immediately, carrying the cell label,
simulation time, and the ledger context that was contradicted.

Like the tracer, this module imports nothing from the rest of the
package — emission sites pass primitives — so it can be imported from
any layer without cycles.
"""

from __future__ import annotations

from typing import Optional

#: The auditor emission sites consult (``None`` = auditing off).
ACTIVE: Optional["Auditor"] = None


class AuditViolation(AssertionError):
    """An invariant broke. The message carries full trace context."""


class _CellLedger:
    """Per-cell ledgers (one simulation = one cell)."""

    __slots__ = (
        "label",
        "submitted",
        "terminal",
        "running_on",
        "slot_population",
        "slot_capacity",
        "job_claims",
        "open_leases",
    )

    def __init__(self, label: str) -> None:
        self.label = label
        self.submitted: set[str] = set()
        #: job_id -> terminal status (Completed/Failed result status).
        self.terminal: dict[str, str] = {}
        #: job_id -> node currently running it.
        self.running_on: dict[str, str] = {}
        #: node -> live claim count.
        self.slot_population: dict[str, int] = {}
        #: node -> advertised slot count.
        self.slot_capacity: dict[str, int] = {}
        #: job_id -> claim token (schedd-side open claims).
        self.job_claims: dict[str, object] = {}
        #: (node, job_id) -> lease token (startd-side open leases).
        self.open_leases: dict[tuple[str, str], object] = {}


class Auditor:
    """Checks invariants as emission sites report transitions."""

    def __init__(self) -> None:
        self.checks = 0
        self.violations = 0
        self.cells = 0
        self._cell = _CellLedger("(no cell)")

    # -- cell lifecycle ---------------------------------------------------

    def enter_cell(self, label: str) -> None:
        """Reset ledgers for a new simulation cell."""
        self.cells += 1
        self._cell = _CellLedger(label)

    def finish_cell(self) -> None:
        """Reconcile the ledgers at cell end; raise on any leak."""
        cell = self._cell
        self.checks += 1
        missing = cell.submitted - set(cell.terminal)
        if missing:
            self._violate(
                "job-without-terminal-outcome",
                f"{len(missing)} submitted job(s) never reached a terminal "
                f"outcome: {sorted(missing)[:5]}",
            )
        if cell.running_on:
            self._violate(
                "run-ledger-leak",
                f"jobs still marked running at cell end: "
                f"{sorted(cell.running_on.items())[:5]}",
            )
        busy = {n: c for n, c in cell.slot_population.items() if c != 0}
        if busy:
            self._violate(
                "slot-ledger-leak",
                f"nonzero slot populations at cell end: {sorted(busy.items())[:5]}",
            )
        if cell.job_claims:
            self._violate(
                "claim-ledger-leak",
                f"claims still open at cell end: "
                f"{sorted(cell.job_claims.items())[:5]}",
            )
        if cell.open_leases:
            self._violate(
                "lease-ledger-leak",
                f"leases still open at cell end: "
                f"{sorted(cell.open_leases)[:5]}",
            )

    # -- job lifecycle ----------------------------------------------------

    def job_submitted(self, job_id: str) -> None:
        self.checks += 1
        self._cell.submitted.add(job_id)

    def job_terminal(self, job_id: str, status: str, now: float) -> None:
        cell = self._cell
        self.checks += 1
        previous = cell.terminal.get(job_id)
        if previous is not None:
            self._violate(
                "double-terminal-outcome",
                f"job {job_id!r} reached a second terminal outcome "
                f"{status!r} (already {previous!r})",
                now,
            )
        cell.terminal[job_id] = status

    # -- crash–recovery ---------------------------------------------------

    def schedd_crashed(self, now: float) -> None:
        """The schedd died: its claim state died with it.

        Only the *claim* ledger is wiped — claims live in the schedd and
        are legitimately re-opened by recovery's re-adoption. Every
        other ledger (terminal outcomes, runs, slots, leases) lives
        outside the crashed daemon, so the exactly-one-terminal-outcome
        and no-double-run invariants keep holding *across* the restart:
        a replayed queue that completed a job twice, or re-dispatched a
        job whose run is still alive, still trips the check.
        """
        self.checks += 1
        self._cell.job_claims.clear()

    # -- runs and slots ---------------------------------------------------

    def run_started(self, node: str, job_id: str, now: float) -> None:
        cell = self._cell
        self.checks += 1
        already = cell.running_on.get(job_id)
        if already is not None:
            self._violate(
                "job-on-two-nodes",
                f"job {job_id!r} started on {node!r} while still running "
                f"on {already!r}",
                now,
            )
        cell.running_on[job_id] = node

    def run_ended(self, node: str, job_id: str, now: float) -> None:
        cell = self._cell
        self.checks += 1
        cell.running_on.pop(job_id, None)

    def slot_claimed(self, node: str, job_id: str, capacity: int, now: float) -> None:
        cell = self._cell
        self.checks += 1
        cell.slot_capacity[node] = capacity
        population = cell.slot_population.get(node, 0) + 1
        cell.slot_population[node] = population
        if population > capacity:
            self._violate(
                "slot-oversubscription",
                f"{node!r} holds {population} claims over {capacity} slots "
                f"(latest: job {job_id!r})",
                now,
            )

    def slot_released(self, node: str, job_id: str, now: float) -> None:
        cell = self._cell
        self.checks += 1
        population = cell.slot_population.get(node, 0) - 1
        cell.slot_population[node] = population
        if population < 0:
            self._violate(
                "slot-double-release",
                f"{node!r} released more claims than it opened "
                f"(job {job_id!r})",
                now,
            )

    # -- device memory ----------------------------------------------------

    def device_memory(self, device: str, free_mb: float, now: float) -> None:
        self.checks += 1
        if free_mb < -1e-6:
            self._violate(
                "negative-device-memory",
                f"device {device!r} accounting went negative: "
                f"{free_mb:.1f} MB free",
                now,
            )

    # -- claims and leases ------------------------------------------------

    def claim_opened(self, job_id: str, token: object, now: float) -> None:
        cell = self._cell
        self.checks += 1
        existing = cell.job_claims.get(job_id)
        if existing is not None:
            self._violate(
                "double-claim",
                f"job {job_id!r} opened claim {token!r} while claim "
                f"{existing!r} is still open",
                now,
            )
        cell.job_claims[job_id] = token

    def claim_closed(self, job_id: str, token: object, now: float) -> None:
        self.checks += 1
        self._cell.job_claims.pop(job_id, None)

    def lease_opened(self, node: str, job_id: str, token: object, now: float) -> None:
        cell = self._cell
        self.checks += 1
        key = (node, job_id)
        if key in cell.open_leases:
            self._violate(
                "double-lease",
                f"lease for job {job_id!r} on {node!r} opened twice "
                f"(token {token!r})",
                now,
            )
        cell.open_leases[key] = token

    def lease_closed(self, node: str, job_id: str, token: object, now: float) -> None:
        self.checks += 1
        self._cell.open_leases.pop((node, job_id), None)

    # -- reporting --------------------------------------------------------

    def _violate(
        self, kind: str, detail: str, now: Optional[float] = None
    ) -> None:
        self.violations += 1
        cell = self._cell
        at = f" at t={now:.3f}" if now is not None else ""
        raise AuditViolation(
            f"[{kind}] cell {cell.label!r}{at}: {detail}\n"
            f"  submitted={len(cell.submitted)} "
            f"terminal={len(cell.terminal)} "
            f"running={len(cell.running_on)} "
            f"open_claims={len(cell.job_claims)} "
            f"open_leases={len(cell.open_leases)}"
        )

    def render(self) -> str:
        """One summary line for the CLI footer."""
        return (
            f"[audit: {self.checks:,} checks across {self.cells} cell(s), "
            f"{self.violations} violation(s)]"
        )

    def __repr__(self) -> str:
        return f"<Auditor checks={self.checks} violations={self.violations}>"


def activate() -> Auditor:
    """Install a fresh auditor; emission sites start reporting to it."""
    global ACTIVE
    ACTIVE = Auditor()
    return ACTIVE


def deactivate() -> Optional[Auditor]:
    """Uninstall the active auditor and return it (``None`` if none)."""
    global ACTIVE
    auditor, ACTIVE = ACTIVE, None
    return auditor
