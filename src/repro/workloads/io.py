"""Job-set serialization: save and reload exact workloads as JSON.

Reproducibility glue: experiments can pin the *exact* job set (not just
the seed) to a file, share it, and reload it bit-for-bit — the moral
equivalent of publishing the trace alongside the paper.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .profiles import HostPhase, JobProfile, OffloadPhase, Phase

FORMAT_VERSION = 1


def _phase_to_dict(phase: Phase) -> dict:
    if isinstance(phase, HostPhase):
        return {"kind": "host", "duration": phase.duration}
    return {
        "kind": "offload",
        "work": phase.work,
        "threads": phase.threads,
        "memory_mb": phase.memory_mb,
        "transfer_mb": phase.transfer_mb,
    }


def _phase_from_dict(data: dict) -> Phase:
    kind = data.get("kind")
    if kind == "host":
        return HostPhase(duration=float(data["duration"]))
    if kind == "offload":
        return OffloadPhase(
            work=float(data["work"]),
            threads=int(data["threads"]),
            memory_mb=float(data["memory_mb"]),
            transfer_mb=float(data.get("transfer_mb", 0.0)),
        )
    raise ValueError(f"unknown phase kind {kind!r}")


def job_to_dict(job: JobProfile) -> dict:
    return {
        "job_id": job.job_id,
        "app": job.app,
        "declared_memory_mb": job.declared_memory_mb,
        "declared_threads": job.declared_threads,
        "submit_time": job.submit_time,
        "phases": [_phase_to_dict(p) for p in job.phases],
    }


def job_from_dict(data: dict) -> JobProfile:
    return JobProfile(
        job_id=str(data["job_id"]),
        app=str(data["app"]),
        phases=tuple(_phase_from_dict(p) for p in data["phases"]),
        declared_memory_mb=float(data["declared_memory_mb"]),
        declared_threads=int(data["declared_threads"]),
        submit_time=float(data.get("submit_time", 0.0)),
    )


def dump_jobs(jobs: list[JobProfile], path: Union[str, Path]) -> None:
    """Write a job set to a JSON file."""
    payload = {
        "format": "repro-jobset",
        "version": FORMAT_VERSION,
        "count": len(jobs),
        "jobs": [job_to_dict(job) for job in jobs],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_jobs(path: Union[str, Path]) -> list[JobProfile]:
    """Read a job set back; validates the envelope."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-jobset":
        raise ValueError(f"{path}: not a repro job-set file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {payload.get('version')!r}"
        )
    jobs = [job_from_dict(d) for d in payload["jobs"]]
    if len(jobs) != payload.get("count"):
        raise ValueError(f"{path}: count mismatch")
    return jobs


def dumps_jobs(jobs: list[JobProfile]) -> str:
    """Job set to a JSON string (for tests and embedding)."""
    return json.dumps(
        {
            "format": "repro-jobset",
            "version": FORMAT_VERSION,
            "count": len(jobs),
            "jobs": [job_to_dict(job) for job in jobs],
        }
    )


def loads_jobs(text: str) -> list[JobProfile]:
    """Inverse of :func:`dumps_jobs`."""
    payload = json.loads(text)
    if payload.get("format") != "repro-jobset":
        raise ValueError("not a repro job-set document")
    return [job_from_dict(d) for d in payload["jobs"]]
