"""Workload models: job profiles, Table-I applications, synthetic job sets."""

from .from_submit import profile_from_ad, profiles_from_submit
from .io import dump_jobs, dumps_jobs, job_from_dict, job_to_dict, load_jobs, loads_jobs
from .profiles import (
    HostPhase,
    JobProfile,
    OffloadPhase,
    Phase,
    alternating_profile,
)
from .synthetic import (
    DISTRIBUTIONS,
    SyntheticSpec,
    draw_levels,
    generate_synthetic_jobs,
    generate_synthetic_jobs_vectorized,
    level_to_resources,
    resource_histogram,
)
from .table1 import (
    AppSpec,
    MEMORY_QUANTUM_MB,
    TABLE1_APPS,
    build_profile,
    generate_table1_job,
    generate_table1_jobs,
    quantize_memory,
)

__all__ = [
    "AppSpec",
    "DISTRIBUTIONS",
    "HostPhase",
    "JobProfile",
    "MEMORY_QUANTUM_MB",
    "OffloadPhase",
    "Phase",
    "SyntheticSpec",
    "TABLE1_APPS",
    "alternating_profile",
    "build_profile",
    "draw_levels",
    "dump_jobs",
    "dumps_jobs",
    "generate_synthetic_jobs",
    "generate_synthetic_jobs_vectorized",
    "generate_table1_job",
    "generate_table1_jobs",
    "job_from_dict",
    "job_to_dict",
    "level_to_resources",
    "load_jobs",
    "loads_jobs",
    "profile_from_ad",
    "profiles_from_submit",
    "quantize_memory",
    "resource_histogram",
]
