"""Generators for the paper's real Xeon Phi workloads (Table I).

Each application is described by the numbers Table I publishes — its
declared thread count and the range its instances' memory requests span —
plus offload-structure parameters (nominal duration, offload duty cycle,
burst count) chosen so the *baseline behaviour the paper measures*
emerges: exclusive-mode core utilization around 50% for the 1000-job mix
(§III), and an 8-node MC makespan in the right ballpark (Table II).

Instances are drawn with a seeded ``numpy`` generator, so every job set
is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profiles import JobProfile, OffloadPhase, alternating_profile

#: Memory quantum for declared requests ("increments of 50MB", §IV-C).
MEMORY_QUANTUM_MB = 50.0


@dataclass(frozen=True)
class AppSpec:
    """Generation parameters for one Table-I application."""

    name: str
    description: str
    threads: int
    memory_range_mb: tuple[float, float]
    #: Mean of the job's nominal (alone, full-speed) duration in seconds.
    mean_duration_s: float
    #: Log-normal sigma of the duration draw.
    duration_sigma: float
    #: Fraction of the nominal duration spent in offloads.
    duty_cycle: float
    #: Inclusive range of offload bursts per job.
    offload_count: tuple[int, int]


#: Table I of the paper, augmented with offload-structure parameters.
TABLE1_APPS: dict[str, AppSpec] = {
    "KM": AppSpec(
        "KM", "K-means (Lloyd), 4M points / 3 dims / 32 means",
        threads=60, memory_range_mb=(300, 1250),
        mean_duration_s=20.0, duration_sigma=0.30, duty_cycle=0.88,
        offload_count=(4, 8),
    ),
    "MC": AppSpec(
        "MC", "Monte Carlo simulation, N=32M paths, T=1000 steps",
        threads=180, memory_range_mb=(400, 650),
        mean_duration_s=24.0, duration_sigma=0.25, duty_cycle=0.90,
        offload_count=(3, 6),
    ),
    "MD": AppSpec(
        "MD", "Molecular dynamics, 25000 particles, 5 time steps",
        threads=180, memory_range_mb=(300, 750),
        mean_duration_s=22.0, duration_sigma=0.30, duty_cycle=0.86,
        offload_count=(4, 8),
    ),
    "SG": AppSpec(
        "SG", "SGEMM series, 8Kx8K matrices, 10 iterations",
        threads=60, memory_range_mb=(500, 3400),
        mean_duration_s=30.0, duration_sigma=0.30, duty_cycle=0.92,
        offload_count=(5, 10),
    ),
    "BT": AppSpec(
        "BT", "NPB block tri-diagonal CFD solver, 162^3 grid",
        threads=240, memory_range_mb=(300, 1250),
        mean_duration_s=28.0, duration_sigma=0.25, duty_cycle=0.84,
        offload_count=(3, 6),
    ),
    "SP": AppSpec(
        "SP", "NPB scalar penta-diagonal CFD solver, 162^3 grid",
        threads=180, memory_range_mb=(300, 1850),
        mean_duration_s=26.0, duration_sigma=0.25, duty_cycle=0.86,
        offload_count=(3, 6),
    ),
    "LU": AppSpec(
        "LU", "NPB lower-upper Gauss-Seidel CFD solver, 162^3 grid",
        threads=180, memory_range_mb=(400, 1250),
        mean_duration_s=25.0, duration_sigma=0.25, duty_cycle=0.86,
        offload_count=(3, 6),
    ),
}


def quantize_memory(memory_mb: float, quantum: float = MEMORY_QUANTUM_MB) -> float:
    """Round a memory request up to the next quantum."""
    return float(np.ceil(memory_mb / quantum) * quantum)


def build_profile(
    job_id: str,
    app: str,
    rng: np.random.Generator,
    threads: int,
    peak_memory_mb: float,
    nominal_s: float,
    duty_cycle: float,
    offloads: int,
    submit_time: float = 0.0,
) -> JobProfile:
    """Assemble one job's phase script from drawn parameters.

    Offload work and host gaps are split into the requested number of
    bursts with random (Dirichlet-like) proportions; resident memory
    grows monotonically to the peak (stacks grow, §II-C); per-burst
    threads vary modestly below the declared maximum, reflecting that
    offloads "do not always use all 60 cores" (§I).
    """
    if offloads < 1:
        raise ValueError("offloads must be >= 1")
    total_offload = nominal_s * duty_cycle
    total_host = nominal_s - total_offload

    work_shares = rng.dirichlet(np.full(offloads, 4.0))
    gap_shares = rng.dirichlet(np.full(offloads + 1, 4.0))
    host_times = gap_shares * total_host

    declared_memory = quantize_memory(peak_memory_mb)
    declared_threads = threads

    phases: list[OffloadPhase] = []
    for i in range(offloads):
        # Monotone footprint ramp ending exactly at the peak.
        frac = 0.55 + 0.45 * (i + 1) / offloads
        memory = peak_memory_mb * frac if i < offloads - 1 else peak_memory_mb
        if i == offloads - 1:
            burst_threads = threads
        else:
            burst_threads = max(4, int(rng.uniform(0.85, 1.0) * threads) // 4 * 4)
        phases.append(
            OffloadPhase(
                work=float(work_shares[i] * total_offload),
                threads=burst_threads,
                memory_mb=float(memory),
                transfer_mb=float(0.25 * memory),
            )
        )
    return alternating_profile(
        job_id=job_id,
        app=app,
        offloads=phases,
        host_gaps=[float(t) for t in host_times[1:]],
        declared_memory_mb=declared_memory,
        declared_threads=declared_threads,
        submit_time=submit_time,
        leading_host=float(host_times[0]),
    )


def generate_table1_job(
    job_id: str, app: str, rng: np.random.Generator, submit_time: float = 0.0
) -> JobProfile:
    """Draw one instance of a Table-I application."""
    spec = TABLE1_APPS[app]
    lo, hi = spec.memory_range_mb
    peak_memory = float(rng.uniform(lo, hi))
    mu = np.log(spec.mean_duration_s) - spec.duration_sigma**2 / 2
    nominal = float(rng.lognormal(mu, spec.duration_sigma))
    offloads = int(rng.integers(spec.offload_count[0], spec.offload_count[1] + 1))
    return build_profile(
        job_id=job_id,
        app=app,
        rng=rng,
        threads=spec.threads,
        peak_memory_mb=peak_memory,
        nominal_s=nominal,
        duty_cycle=spec.duty_cycle,
        offloads=offloads,
        submit_time=submit_time,
    )


def generate_table1_jobs(
    count: int, seed: int = 0, apps: list[str] | None = None
) -> list[JobProfile]:
    """The paper's job sets: ``count`` independent instances drawn evenly
    (round-robin with shuffled order) from the Table-I applications."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    names = list(apps) if apps else list(TABLE1_APPS)
    for name in names:
        if name not in TABLE1_APPS:
            raise ValueError(f"unknown app {name!r}")
    assignments = [names[i % len(names)] for i in range(count)]
    rng.shuffle(assignments)
    return [
        generate_table1_job(f"{app.lower()}-{i:04d}", app, rng)
        for i, app in enumerate(assignments)
    ]
