"""Synthetic job sets with controlled resource distributions (Fig. 7).

The sensitivity study (§V-B) builds sets of 400 synthetic offload jobs
whose *resource level* — a single latent variable driving both memory and
thread demand, since "jobs with low Xeon Phi memory requirements also
have low thread requirements" — follows one of four distributions:

* ``uniform`` — equally spread across resource levels;
* ``normal`` — most jobs mid-range;
* ``low-skew`` — mean shifted one standard deviation toward low demand;
* ``high-skew`` — mean shifted one standard deviation toward high demand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profiles import JobProfile
from .table1 import build_profile, quantize_memory

DISTRIBUTIONS = ("uniform", "normal", "low-skew", "high-skew")

#: Std-dev of the normal resource-level distribution (level in [0, 1]).
_SIGMA = 0.16
#: The skewed means sit one sigma away from the normal mean (paper text).
_MEANS = {"normal": 0.5, "low-skew": 0.5 - _SIGMA, "high-skew": 0.5 + _SIGMA}


@dataclass(frozen=True)
class SyntheticSpec:
    """Ranges the latent resource level maps into."""

    memory_range_mb: tuple[float, float] = (300.0, 6000.0)
    thread_range: tuple[int, int] = (40, 240)
    mean_duration_s: float = 25.0
    duration_sigma: float = 0.30
    duty_cycle: float = 0.88
    offload_count: tuple[int, int] = (3, 8)


DEFAULT_SPEC = SyntheticSpec()


def draw_levels(
    count: int, distribution: str, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` resource levels in [0, 1] from a Fig.-7 distribution."""
    if distribution == "uniform":
        return rng.uniform(0.0, 1.0, size=count)
    try:
        mean = _MEANS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; choose from {DISTRIBUTIONS}"
        ) from None
    return np.clip(rng.normal(mean, _SIGMA, size=count), 0.0, 1.0)


def level_to_resources(
    level: float, spec: SyntheticSpec = DEFAULT_SPEC
) -> tuple[float, int]:
    """Map one resource level to (peak memory MB, declared threads)."""
    if not 0.0 <= level <= 1.0:
        raise ValueError("level must lie in [0, 1]")
    mem_lo, mem_hi = spec.memory_range_mb
    thr_lo, thr_hi = spec.thread_range
    memory = mem_lo + level * (mem_hi - mem_lo)
    threads = int(round((thr_lo + level * (thr_hi - thr_lo)) / 4.0) * 4)
    return memory, max(4, min(threads, thr_hi))


def generate_synthetic_jobs(
    count: int,
    distribution: str,
    seed: int = 0,
    spec: SyntheticSpec = DEFAULT_SPEC,
) -> list[JobProfile]:
    """Build one synthetic job set (Fig. 7 input to Figs. 8-10)."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    levels = draw_levels(count, distribution, rng)
    # The duration parameters are loop-invariant; only the draws vary.
    mu = np.log(spec.mean_duration_s) - spec.duration_sigma**2 / 2
    jobs = []
    for i, level in enumerate(levels):
        memory, threads = level_to_resources(float(level), spec)
        nominal = float(rng.lognormal(mu, spec.duration_sigma))
        offloads = int(
            rng.integers(spec.offload_count[0], spec.offload_count[1] + 1)
        )
        jobs.append(
            build_profile(
                job_id=f"syn-{distribution}-{i:04d}",
                app=f"SYN/{distribution}",
                rng=rng,
                threads=threads,
                peak_memory_mb=memory,
                nominal_s=nominal,
                duty_cycle=spec.duty_cycle,
                offloads=offloads,
            )
        )
    return jobs


def generate_synthetic_jobs_vectorized(
    count: int,
    distribution: str,
    seed: int = 0,
    spec: SyntheticSpec = DEFAULT_SPEC,
) -> list[JobProfile]:
    """Batched generator for cluster-scale traces (100k+ jobs).

    Produces the same *distributions* as :func:`generate_synthetic_jobs`
    — levels, lognormal durations, offload splits, thread jitter — but
    draws every random quantity in one numpy call per kind instead of
    interleaving per-job draws, so building a 100k-job trace is a few
    array passes plus profile assembly. Deterministic in ``seed``, but a
    *different* stream than the scalar generator (the paper-scale
    experiments keep the original; this one feeds the scale sweeps).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    from .profiles import HostPhase, OffloadPhase, JobProfile as _JobProfile
    from .table1 import MEMORY_QUANTUM_MB

    rng = np.random.default_rng(seed)
    levels = draw_levels(count, distribution, rng)

    mem_lo, mem_hi = spec.memory_range_mb
    thr_lo, thr_hi = spec.thread_range
    memories = mem_lo + levels * (mem_hi - mem_lo)
    threads = (
        np.round((thr_lo + levels * (thr_hi - thr_lo)) / 4.0) * 4
    ).astype(int)
    np.clip(threads, 4, thr_hi, out=threads)

    mu = np.log(spec.mean_duration_s) - spec.duration_sigma**2 / 2
    nominals = rng.lognormal(mu, spec.duration_sigma, size=count)
    offload_counts = rng.integers(
        spec.offload_count[0], spec.offload_count[1] + 1, size=count
    )

    # Dirichlet(4.0, k) for varying k, batched: one flat gamma array per
    # kind, normalized per job via reduceat over the job boundaries.
    work_total = int(offload_counts.sum())
    work_gammas = rng.gamma(4.0, size=work_total)
    work_starts = np.zeros(count, dtype=int)
    np.cumsum(offload_counts[:-1], out=work_starts[1:])
    work_sums = np.add.reduceat(work_gammas, work_starts)

    gap_counts = offload_counts + 1
    gap_gammas = rng.gamma(4.0, size=int(gap_counts.sum()))
    gap_starts = np.zeros(count, dtype=int)
    np.cumsum(gap_counts[:-1], out=gap_starts[1:])
    gap_sums = np.add.reduceat(gap_gammas, gap_starts)

    jitter = rng.uniform(0.85, 1.0, size=work_total)

    declared = np.ceil(memories / MEMORY_QUANTUM_MB) * MEMORY_QUANTUM_MB
    jobs: list[JobProfile] = []
    for i in range(count):
        offloads = int(offload_counts[i])
        memory = float(memories[i])
        job_threads = int(threads[i])
        nominal = float(nominals[i])
        total_offload = nominal * spec.duty_cycle
        total_host = nominal - total_offload
        w0 = work_starts[i]
        work_shares = work_gammas[w0:w0 + offloads] / work_sums[i]
        g0 = gap_starts[i]
        gap_shares = gap_gammas[g0:g0 + offloads + 1] / gap_sums[i]
        host_times = gap_shares * total_host

        phases: list = []
        leading = float(host_times[0])
        if leading > 0:
            phases.append(HostPhase(leading))
        for k in range(offloads):
            frac = 0.55 + 0.45 * (k + 1) / offloads
            burst_memory = memory * frac if k < offloads - 1 else memory
            if k == offloads - 1:
                burst_threads = job_threads
            else:
                burst_threads = max(
                    4, int(jitter[w0 + k] * job_threads) // 4 * 4
                )
            phases.append(
                OffloadPhase(
                    work=float(work_shares[k] * total_offload),
                    threads=burst_threads,
                    memory_mb=float(burst_memory),
                    transfer_mb=float(0.25 * burst_memory),
                )
            )
            gap = float(host_times[k + 1])
            if gap > 0:
                phases.append(HostPhase(gap))
        jobs.append(
            _JobProfile(
                job_id=f"syn-{distribution}-{i:04d}",
                app=f"SYN/{distribution}",
                phases=tuple(phases),
                declared_memory_mb=float(declared[i]),
                declared_threads=job_threads,
                submit_time=0.0,
            )
        )
    return jobs


def resource_histogram(
    jobs: list[JobProfile], bins: int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of declared-memory levels (for regenerating Fig. 7)."""
    spec = DEFAULT_SPEC
    mem_lo, mem_hi = spec.memory_range_mb
    levels = [
        (job.declared_memory_mb - mem_lo) / (quantize_memory(mem_hi) - mem_lo)
        for job in jobs
    ]
    counts, edges = np.histogram(np.clip(levels, 0.0, 1.0), bins=bins, range=(0, 1))
    return counts, edges
