"""Build runnable job profiles from Condor submit descriptions.

A submit file declares *what the user promises* (Phi devices, memory,
threads); the executable's actual offload behaviour is opaque to the
scheduler. For simulation we synthesize a plausible phase script from
the declaration — the same construction the synthetic generators use —
so submit-file-driven workflows exercise the identical pipeline.
"""

from __future__ import annotations

from typing import Optional

from typing import TYPE_CHECKING

import numpy as np

from .profiles import JobProfile
from .table1 import build_profile

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from ..condor.classad import ClassAd


def profile_from_ad(
    ad: "ClassAd",
    rng: np.random.Generator,
    job_id: Optional[str] = None,
    mean_duration_s: float = 25.0,
    duty_cycle: float = 0.88,
) -> JobProfile:
    """Synthesize a JobProfile honouring an ad's resource declaration."""
    memory = ad.evaluate("RequestPhiMemory")
    threads = ad.evaluate("RequestPhiThreads")
    if not isinstance(memory, (int, float)) or isinstance(memory, bool):
        raise ValueError("ad lacks a numeric RequestPhiMemory")
    if not isinstance(threads, (int, float)) or isinstance(threads, bool):
        raise ValueError("ad lacks a numeric RequestPhiThreads")
    cluster = ad.evaluate("ClusterId")
    proc = ad.evaluate("ProcId")
    app = ad.evaluate("Cmd")
    app_name = app if isinstance(app, str) else "submitted"
    nominal = float(rng.lognormal(np.log(mean_duration_s) - 0.3**2 / 2, 0.3))
    offloads = int(rng.integers(3, 9))
    return build_profile(
        job_id=job_id or f"c{cluster}.p{proc}",
        app=app_name,
        rng=rng,
        threads=int(threads),
        peak_memory_mb=float(memory),
        nominal_s=nominal,
        duty_cycle=duty_cycle,
        offloads=offloads,
    )


def profiles_from_submit(
    text: str,
    seed: int = 0,
    cluster_id: int = 1,
) -> list[JobProfile]:
    """Parse a submit description and synthesize one profile per instance."""
    from ..condor.submit import parse_submit

    rng = np.random.default_rng(seed)
    return [
        profile_from_ad(ad, rng) for ad in parse_submit(text, cluster_id=cluster_id)
    ]
