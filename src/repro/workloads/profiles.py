"""Job profiles: the offload-model structure of a Xeon Phi job.

The paper's jobs launch on the host and *intermittently* offload work to
the coprocessor (Figs. 2 and 3): a job is an alternating sequence of host
phases (the coprocessor is idle for this job) and offload phases (a burst
of device work with a thread count and a resident-memory footprint).

Users declare a per-job **maximum memory** and **maximum thread** demand
(§IV-B); the scheduler sees only those declarations, never the profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union


@dataclass(frozen=True)
class HostPhase:
    """Time the job spends on the host processor; the device sits idle."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


@dataclass(frozen=True)
class OffloadPhase:
    """One offload burst to the coprocessor.

    Attributes
    ----------
    work:
        Seconds of device execution at full speed (service rate 1).
    threads:
        Device threads the offload spawns.
    memory_mb:
        Device-resident memory while (and after) this offload runs. Per
        the paper's observation that stacks and committed blocks only
        grow, residency is monotone: the process keeps the maximum
        footprint reached so far until it exits.
    transfer_mb:
        Data moved host<->device around the offload (drives the SCIF
        transfer cost; the host blocks during transfers).
    """

    work: float
    threads: int
    memory_mb: float
    transfer_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError("work must be non-negative")
        if self.threads <= 0:
            raise ValueError("threads must be positive")
        if self.memory_mb < 0:
            raise ValueError("memory_mb must be non-negative")
        if self.transfer_mb < 0:
            raise ValueError("transfer_mb must be non-negative")


Phase = Union[HostPhase, OffloadPhase]


@dataclass(frozen=True)
class JobProfile:
    """A complete job: identity, declared resources, and its phase script.

    The *declared* values are what the user writes in the submit file; the
    scheduler (knapsack weights/values) and COSMIC (enforcement limits)
    consume only these. The phases describe what the job actually does.
    """

    job_id: str
    app: str
    phases: tuple[Phase, ...]
    declared_memory_mb: float
    declared_threads: int
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be non-empty")
        if self.declared_memory_mb <= 0:
            raise ValueError("declared_memory_mb must be positive")
        if self.declared_threads <= 0:
            raise ValueError("declared_threads must be positive")
        if self.submit_time < 0:
            raise ValueError("submit_time must be non-negative")
        if not self.phases:
            raise ValueError("a job needs at least one phase")

    # -- derived structure --------------------------------------------------

    def offloads(self) -> Iterator[OffloadPhase]:
        """Iterate the offload phases in order."""
        return (p for p in self.phases if isinstance(p, OffloadPhase))

    @property
    def offload_count(self) -> int:
        return sum(1 for _ in self.offloads())

    @property
    def total_offload_work(self) -> float:
        """Seconds of device work at full speed."""
        return sum(p.work for p in self.offloads())

    @property
    def total_host_time(self) -> float:
        return sum(p.duration for p in self.phases if isinstance(p, HostPhase))

    @property
    def nominal_duration(self) -> float:
        """Wall-clock of the job running alone at full speed, sans transfers."""
        return self.total_offload_work + self.total_host_time

    @property
    def peak_memory_mb(self) -> float:
        """Largest actual device footprint across offloads (0 if none)."""
        return max((p.memory_mb for p in self.offloads()), default=0.0)

    @property
    def peak_threads(self) -> int:
        """Largest actual thread demand across offloads (0 if none)."""
        return max((p.threads for p in self.offloads()), default=0)

    @property
    def offload_duty_cycle(self) -> float:
        """Fraction of nominal duration spent offloaded."""
        nominal = self.nominal_duration
        if nominal == 0:
            return 0.0
        return self.total_offload_work / nominal

    @property
    def honest(self) -> bool:
        """True when declarations cover the job's actual peak demands.

        A dishonest job (user underestimated memory) is exactly what
        COSMIC's container enforcement exists to terminate (§IV-D2).
        """
        return (
            self.peak_memory_mb <= self.declared_memory_mb
            and self.peak_threads <= self.declared_threads
        )

    def validate_fits(self, memory_mb: float, threads: int) -> None:
        """Raise if the declaration cannot fit an empty device."""
        if self.declared_memory_mb > memory_mb:
            raise ValueError(
                f"{self.job_id}: declared memory {self.declared_memory_mb} MB "
                f"exceeds device capacity {memory_mb} MB"
            )
        if self.declared_threads > threads:
            raise ValueError(
                f"{self.job_id}: declared threads {self.declared_threads} "
                f"exceed device hardware threads {threads}"
            )


def alternating_profile(
    job_id: str,
    app: str,
    offloads: list[OffloadPhase],
    host_gaps: list[float],
    declared_memory_mb: float,
    declared_threads: int,
    submit_time: float = 0.0,
    leading_host: float = 0.0,
) -> JobProfile:
    """Build the canonical host/offload alternation of Figs. 2-3.

    ``host_gaps`` supplies the host time *after* each offload; it must be
    the same length as ``offloads`` (use 0.0 for "ends right after the
    last offload").
    """
    if len(host_gaps) != len(offloads):
        raise ValueError("host_gaps must match offloads in length")
    phases: list[Phase] = []
    if leading_host > 0:
        phases.append(HostPhase(leading_host))
    for offload, gap in zip(offloads, host_gaps):
        phases.append(offload)
        if gap > 0:
            phases.append(HostPhase(gap))
    return JobProfile(
        job_id=job_id,
        app=app,
        phases=tuple(phases),
        declared_memory_mb=declared_memory_mb,
        declared_threads=declared_threads,
        submit_time=submit_time,
    )
