"""SCIF — the host<->device transfer cost model.

The real Symmetric Communication Interface moves offload buffers over
PCIe. For scheduling purposes only its cost matters: a latency per
transfer plus a bandwidth term. Transfers block the *host* side of the
job (the device is not computing for this job during a transfer), so they
behave like extra host time as far as coprocessor utilization goes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SCIFModel:
    """Linear latency/bandwidth cost model for PCIe transfers.

    Defaults approximate a Gen2 x16 link as used by Knights Corner cards:
    ~6 GB/s sustained, ~10 us setup per transfer.
    """

    latency_s: float = 1e-5
    bandwidth_mb_per_s: float = 6000.0

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.bandwidth_mb_per_s <= 0:
            raise ValueError("bandwidth_mb_per_s must be positive")

    def transfer_time(self, mb: float) -> float:
        """Seconds to move ``mb`` MiB in one direction."""
        if mb < 0:
            raise ValueError("mb must be non-negative")
        if mb == 0:
            return 0.0
        return self.latency_s + mb / self.bandwidth_mb_per_s


#: A zero-cost model for experiments that ignore transfer overhead.
FREE_TRANSFERS = SCIFModel(latency_s=0.0, bandwidth_mb_per_s=float("inf"))
