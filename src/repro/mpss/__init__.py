"""Simulated MPSS stack: COI process lifecycle, SCIF transfers, offload runtime."""

from .coi import COIProcess
from .runtime import (
    JobRunResult,
    MemoryEnforcer,
    MemoryLimitExceeded,
    OffloadGate,
    OffloadRuntime,
)
from .scif import FREE_TRANSFERS, SCIFModel

__all__ = [
    "COIProcess",
    "FREE_TRANSFERS",
    "JobRunResult",
    "MemoryEnforcer",
    "MemoryLimitExceeded",
    "OffloadGate",
    "OffloadRuntime",
    "SCIFModel",
]
