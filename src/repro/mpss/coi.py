"""COI — the Coprocessor Offload Infrastructure process model.

For every host process that offloads, the real COI creates a sibling
process on the card that executes the offloaded sections and owns the
job's device memory. We reproduce that lifecycle: registration with the
device, monotone resident-memory growth (stacks and committed blocks grow
but do not shrink until exit, per §II-C), and teardown.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from ..phi.device import XeonPhi


class COIProcess:
    """The device-side process belonging to one host job.

    Parameters
    ----------
    device:
        The coprocessor the process lives on.
    owner:
        Hashable identity (normally the job id).
    base_memory_mb:
        Runtime overhead resident from creation (COI daemon structures).
    on_kill:
        Invoked if the card's OOM killer selects this process.
    """

    def __init__(
        self,
        device: XeonPhi,
        owner: Hashable,
        base_memory_mb: float = 0.0,
        on_kill: Optional[Callable[[Hashable], None]] = None,
    ) -> None:
        if base_memory_mb < 0:
            raise ValueError("base_memory_mb must be non-negative")
        self.device = device
        self.owner = owner
        self._alive = True
        device.register_process(owner, on_kill=on_kill)
        if base_memory_mb:
            device.allocate(owner, base_memory_mb)

    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def resident_mb(self) -> float:
        """Current resident memory on the device."""
        return self.device.resident_of(self.owner)

    def grow_to(self, memory_mb: float) -> None:
        """Grow resident memory to at least ``memory_mb`` (monotone)."""
        if not self._alive:
            raise RuntimeError(f"COI process {self.owner!r} already destroyed")
        if memory_mb > self.resident_mb:
            self.device.set_resident(self.owner, memory_mb)

    def destroy(self) -> None:
        """Tear the process down, reclaiming all device memory."""
        if self._alive:
            self._alive = False
            self.device.unregister_process(self.owner)

    def __repr__(self) -> str:
        state = "alive" if self._alive else "destroyed"
        return f"<COIProcess {self.owner!r} ({state}) on {self.device.name}>"
