"""The offload runtime: executes a :class:`JobProfile` against a device.

This is the simulated analogue of "MPSS runs the job": walk the job's
phase script, spend host phases on the host, move buffers over SCIF, and
execute offload bursts on the card. Two optional hooks let COSMIC wrap
the runtime without the runtime knowing about COSMIC (mirroring the
paper's "transparent add-on" layering):

* an **offload gate** serializes/admits offload bursts (thread budget);
* a **memory enforcer** may terminate a job whose actual footprint
  exceeds its declaration (container limits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Protocol

from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..phi.device import OOMKilled, XeonPhi
from ..sim import Environment, Interrupt
from ..workloads.profiles import HostPhase, JobProfile, OffloadPhase
from .coi import COIProcess
from .scif import SCIFModel


class OffloadGate(Protocol):
    """Admission control for offload bursts (implemented by COSMIC)."""

    def acquire(self, threads: int):
        """Return a yieldable event granting ``threads`` device threads."""

    def release(self, threads: int) -> None:
        """Return previously granted threads."""


class MemoryEnforcer(Protocol):
    """Per-job memory-limit enforcement (implemented by COSMIC)."""

    def check(self, profile: JobProfile, resident_mb: float) -> None:
        """Raise :class:`MemoryLimitExceeded` when the job overruns."""


class MemoryLimitExceeded(Exception):
    """A job's actual device memory exceeded its declared maximum."""

    def __init__(self, job_id: str, resident_mb: float, declared_mb: float) -> None:
        super().__init__(
            f"job {job_id}: resident {resident_mb:.0f} MB exceeds "
            f"declared limit {declared_mb:.0f} MB"
        )
        self.job_id = job_id
        self.resident_mb = resident_mb
        self.declared_mb = declared_mb


class _OOMCause:
    """Interrupt cause delivered when the card OOM-kills this job."""

    __slots__ = ()


_OOM = _OOMCause()


@dataclass
class JobRunResult:
    """Outcome of one job execution."""

    job_id: str
    start: float
    end: float
    #: "completed" | "oom-killed" | "memory-limit", or an infrastructure
    #: status ("device-failed" | "node-lost" | "job-crashed") synthesized
    #: by the startd when a fault kills the run.
    status: str
    offloads_run: int
    #: Which run this was: 0 for the first try, >0 after requeues.
    attempt: int = 0

    @property
    def wall_time(self) -> float:
        return self.end - self.start

    @property
    def completed(self) -> bool:
        return self.status == "completed"


class OffloadRuntime:
    """Executes job profiles on one coprocessor.

    Parameters
    ----------
    env:
        Simulation environment.
    device:
        The card offloads execute on.
    scif:
        Transfer cost model (host-blocking).
    gate:
        Optional offload admission control (COSMIC's thread gate). When
        absent, offloads hit the device directly — thread oversubscription
        becomes possible, exactly as with raw MPSS.
    enforcer:
        Optional per-job memory-limit enforcement (COSMIC's containers).
    coi_base_mb:
        Device memory resident from COI process creation.
    """

    def __init__(
        self,
        env: Environment,
        device: XeonPhi,
        scif: Optional[SCIFModel] = None,
        gate: Optional[OffloadGate] = None,
        enforcer: Optional[MemoryEnforcer] = None,
        coi_base_mb: float = 0.0,
    ) -> None:
        self.env = env
        self.device = device
        self.scif = scif or SCIFModel()
        self.gate = gate
        self.enforcer = enforcer
        self.coi_base_mb = coi_base_mb
        self.results: list[JobRunResult] = []

    def execute(self, profile: JobProfile, owner: Optional[Hashable] = None):
        """Run ``profile`` to completion; ``yield from`` inside a process.

        Returns a :class:`JobRunResult`; a job terminated by the OOM
        killer or by the memory enforcer yields a result with the
        corresponding status rather than raising, since job death is an
        outcome the cluster must absorb, not a simulation error.
        """
        env = self.env
        proc = env.active_process
        if proc is None:
            raise RuntimeError("execute must be called from a process")
        owner = owner if owner is not None else profile.job_id
        start = env.now
        offloads_run = 0
        status = "completed"
        tracer = _trace.ACTIVE
        parent = tracer.get(("run", owner)) if tracer is not None else None
        tid = parent.tid if parent is not None else 0

        def on_kill(_owner: Hashable) -> None:
            if env.active_process is proc:
                # The job OOM-killed *itself* while allocating: a process
                # cannot interrupt itself, so surface the kill directly
                # out of the allocation call instead.
                raise OOMKilled(owner, self.device)
            proc.interrupt(_OOM)

        coi = COIProcess(
            self.device,
            owner,
            base_memory_mb=self.coi_base_mb,
            on_kill=on_kill,
        )
        holding_threads = 0
        pending_grant = None
        grant_threads = 0
        try:
            for phase in profile.phases:
                if isinstance(phase, HostPhase):
                    if phase.duration > 0:
                        t0 = env.now
                        yield env.timeout(phase.duration)
                        if tracer is not None:
                            tracer.complete(
                                "host-phase", "mpss", t0, env.now,
                                tid=tid, parent=parent,
                            )
                    continue
                assert isinstance(phase, OffloadPhase)
                # Move input buffers (host-blocking). The buffers land in
                # the COI process *before* the offload is scheduled, so
                # residency grows now — a queued offload holds its memory
                # (SII-C: stacks and committed blocks persist).
                in_time = self.scif.transfer_time(phase.transfer_mb / 2.0)
                if in_time > 0:
                    t0 = env.now
                    yield env.timeout(in_time)
                    if tracer is not None:
                        tracer.complete(
                            "xfer-in", "mpss", t0, env.now,
                            tid=tid, parent=parent, mb=phase.transfer_mb / 2.0,
                        )
                coi.grow_to(phase.memory_mb)
                if self.enforcer is not None:
                    self.enforcer.check(profile, coi.resident_mb)
                # COSMIC admission: wait for device threads.
                if self.gate is not None:
                    pending_grant = self.gate.acquire(phase.threads)
                    grant_threads = phase.threads
                    gate_start = env.now
                    yield pending_grant
                    pending_grant = None
                    holding_threads = phase.threads
                    if tracer is not None:
                        tracer.complete(
                            "gate-wait", "cosmic", gate_start, env.now,
                            tid=tid, parent=parent, threads=phase.threads,
                        )
                    registry = _metrics.ACTIVE
                    if registry is not None:
                        registry.histogram("offload.gate_wait_s").observe(
                            env.now - gate_start
                        )
                try:
                    yield from self.device.run_offload(
                        owner, phase.threads, phase.work
                    )
                    offloads_run += 1
                finally:
                    if self.gate is not None and holding_threads:
                        self.gate.release(holding_threads)
                        holding_threads = 0
                # Move output buffers (host-blocking).
                out_time = self.scif.transfer_time(phase.transfer_mb / 2.0)
                if out_time > 0:
                    t0 = env.now
                    yield env.timeout(out_time)
                    if tracer is not None:
                        tracer.complete(
                            "xfer-out", "mpss", t0, env.now,
                            tid=tid, parent=parent, mb=phase.transfer_mb / 2.0,
                        )
        except Interrupt as interrupt:
            if isinstance(interrupt.cause, _OOMCause):
                status = "oom-killed"
                if tracer is not None:
                    tracer.instant("oom-killed", "mpss", env.now, tid=tid)
            else:
                raise
        except OOMKilled:
            status = "oom-killed"
            if tracer is not None:
                tracer.instant("oom-killed", "mpss", env.now, tid=tid)
        except MemoryLimitExceeded:
            status = "memory-limit"
            if tracer is not None:
                tracer.instant("memory-limit", "mpss", env.now, tid=tid)
        finally:
            # A kill may land while the job queues for the gate: withdraw
            # the pending grant so the gate never hands threads to a corpse.
            # If the grant already triggered but the kill won the race to
            # resume us, the threads were deducted and must go back.
            if pending_grant is not None:
                if not pending_grant.triggered:
                    cancel = getattr(pending_grant, "cancel", None)
                    if cancel is not None:
                        cancel()
                elif holding_threads == 0 and self.gate is not None:
                    self.gate.release(grant_threads)
            coi.destroy()

        result = JobRunResult(
            job_id=profile.job_id,
            start=start,
            end=env.now,
            status=status,
            offloads_run=offloads_run,
        )
        self.results.append(result)
        return result
